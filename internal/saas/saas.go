// Package saas implements the software-as-a-service workflow of the
// paper: an HTTP/JSON API through which users upload the target source,
// configure faultloads (DSL specs or saved fault models) and workloads,
// launch campaigns, and retrieve failure-analysis reports. It is the
// substitute for ProFIPy's web front end, minus the browser UI.
package saas

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"profipy/internal/analysis"
	"profipy/internal/campaign"
	"profipy/internal/executor"
	"profipy/internal/faultmodel"
	"profipy/internal/fleet"
	"profipy/internal/interp"
	"profipy/internal/kvclient"
	"profipy/internal/obs"
	"profipy/internal/remote"
	"profipy/internal/resultstore"
	"profipy/internal/sandbox"
	"profipy/internal/scanner"
	"profipy/internal/scheduler"
	"profipy/internal/trace"
	"profipy/internal/workload"
)

// maxRequestBytes caps request bodies accepted by the JSON endpoints.
const maxRequestBytes = 16 << 20

// maxTextReportBytes caps the plain-text report response; longer
// reports are truncated rune-safely.
const maxTextReportBytes = 1 << 20

// Project is an uploaded target: named source files plus the workload
// entry configuration.
type Project struct {
	ID    string            `json:"id"`
	Name  string            `json:"name"`
	Files map[string]string `json:"files"`
}

// CampaignRequest configures one campaign run.
type CampaignRequest struct {
	Project string `json:"project"`
	// Model selects a registered fault model by name; Specs supplies an
	// inline faultload instead.
	Model string            `json:"model,omitempty"`
	Specs []faultmodel.Spec `json:"specs,omitempty"`
	// ScanFiles restricts scanning to these files (empty = all).
	ScanFiles []string `json:"scanFiles,omitempty"`
	// Workload execution settings.
	Entry         string   `json:"entry"`
	WorkloadFiles []string `json:"workloadFiles,omitempty"`
	TimeoutSec    int64    `json:"timeoutSec,omitempty"`
	// Rounds overrides the workload rounds per experiment (0 keeps the
	// paper's default). Longer workloads stretch campaign wall time —
	// useful for soak and restart testing.
	Rounds int `json:"rounds,omitempty"`
	// Env selects the host environment: "kvclient" (etcd case study) or
	// "plain" (hooks only).
	Env string `json:"env,omitempty"`
	// SampleN caps experiments; ReducePlan prunes uncovered points.
	SampleN    int   `json:"sampleN,omitempty"`
	ReducePlan bool  `json:"reducePlan,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
	// Engine selects the execution engine: "" or "bytecode" (lowered
	// register bytecode, the default), "closure" (compiled closure
	// tree) or "tree-walk" (per-round tree-walk interpreter). Reports
	// are byte-identical across engines; only throughput differs.
	Engine string `json:"engine,omitempty"`
	// Shards switches the campaign to the sharded executor: the plan is
	// partitioned into this many deterministic shards, ShardWorkers
	// experiments running in parallel per shard (default 1). Zero keeps
	// the single-host N−1 pool. Records are byte-identical either way.
	Shards       int `json:"shards,omitempty"`
	ShardWorkers int `json:"shardWorkers,omitempty"`
	// PrefixFork enables prefix-snapshot fork execution: round 1 of each
	// experiment resumes from its fault site's shared prefix snapshot
	// instead of replaying the workload from round zero. Records are
	// byte-identical either way; experiments that cannot be forked
	// faithfully fall back to full runs automatically.
	PrefixFork bool `json:"prefixFork,omitempty"`
	// Remote executes the campaign on the registered worker fleet:
	// the plan is cut into Shards lease units (default 8) that remote
	// workers pull, execute and stream back, with lease-expiry
	// re-dispatch on worker failure. With no live workers the campaign
	// degrades to in-process execution; records are byte-identical at
	// any worker count either way.
	Remote bool `json:"remote,omitempty"`
	// WaitForWorkers keeps a Remote campaign's shards reserved for the
	// fleet even while no worker is live (instead of falling back to
	// in-process execution).
	WaitForWorkers bool `json:"waitForWorkers,omitempty"`
	// ExperimentWallMS arms the per-experiment wall-clock watchdog:
	// a workload round burning more than this much real time is killed
	// and classified as a timeout. 0 leaves the watchdog off (the
	// byte-reproducible default).
	ExperimentWallMS int64 `json:"experimentWallMs,omitempty"`
	// Classes are user-defined failure modes.
	Classes []analysis.FailureClass `json:"classes,omitempty"`
}

// CampaignSummary is the list view of a finished campaign.
type CampaignSummary struct {
	ID       string `json:"id"`
	Project  string `json:"project"`
	Points   int    `json:"points"`
	Covered  int    `json:"covered"`
	Failures int    `json:"failures"`
	// Mutated and Injected split the experiments by injection kind:
	// compile-time source mutation vs runtime trigger-based injection.
	Mutated  int `json:"mutated"`
	Injected int `json:"injected"`
}

// campaignRun stores a finished campaign.
type campaignRun struct {
	summary CampaignSummary
	report  *analysis.Report
	text    string
	phases  []trace.Span
}

// JobStatus is the API view of a scheduled campaign job.
type JobStatus struct {
	ID       string             `json:"id"`
	Project  string             `json:"project,omitempty"`
	State    scheduler.State    `json:"state"`
	Progress scheduler.Progress `json:"progress"`
	// PhaseMillis holds wall time per completed workflow phase.
	PhaseMillis map[string]int64 `json:"phaseMillis,omitempty"`
	// Campaign is the finished campaign's ID, set once State is "done";
	// fetch the report at /api/v1/campaigns/{campaign}.
	Campaign string `json:"campaign,omitempty"`
	// Attempts counts task executions (>1 after scheduler retries).
	Attempts   int    `json:"attempts,omitempty"`
	Error      string `json:"error,omitempty"`
	EnqueuedMS int64  `json:"enqueuedMs,omitempty"`
	StartedMS  int64  `json:"startedMs,omitempty"`
	FinishedMS int64  `json:"finishedMs,omitempty"`
}

// Server is the SaaS API server state. The mutex guards the project,
// model, and campaign maps only — it is never held across a campaign
// run or any other long operation; campaign execution is owned by the
// scheduler and record persistence by the result store.
type Server struct {
	mu         sync.RWMutex
	projects   map[string]*Project
	models     *faultmodel.Registry
	campaigns  map[string]*campaignRun
	nextID     int
	cores      int
	engine     string
	sched      *scheduler.Scheduler
	store      *resultstore.Store
	reg        *obs.Registry
	fleet      *fleet.Coordinator
	reqTimeout time.Duration
	// Startup-recovery metrics: jobs re-admitted from the job journal by
	// outcome (requeued/resumed/abandoned), and stored records replayed
	// into resumed campaigns instead of re-executed.
	recJobs     *obs.CounterVec
	recReplayed *obs.Counter
	// testProgressHook, when set (tests only, before serving), observes
	// every campaign progress update after it reaches the scheduler; a
	// blocking hook stalls the campaign, which tests use to inspect
	// intermediate job states deterministically.
	testProgressHook func(campaign.Progress)
}

// Options sizes the server and its campaign scheduler.
type Options struct {
	// Cores is the simulated host core count (experiments run N−1 in
	// parallel within one campaign).
	Cores int
	// Workers is the number of campaigns executed concurrently
	// (scheduler pool size, default 2).
	Workers int
	// QueueDepth bounds pending campaign jobs (default 64).
	QueueDepth int
	// RetainJobs bounds finished jobs kept for polling (default 256).
	RetainJobs int
	// DataDir roots the persistent result store: campaign metadata,
	// record segments, reports and the job journal survive restarts
	// there. Empty keeps the store memory-only (records and streams
	// still work, nothing persists).
	DataDir string
	// Metrics is the registry every layer below the server (scheduler,
	// campaigns, executors, result store, HTTP mux) reports into,
	// scraped at GET /metrics. Nil gets a fresh private registry, so
	// the server is always instrumented.
	Metrics *obs.Registry
	// LeaseTTL is how long a remote worker's shard lease survives
	// without a heartbeat before it is re-dispatched (default 15s).
	LeaseTTL time.Duration
	// Heartbeat is the cadence workers are told to heartbeat at
	// (default LeaseTTL/3).
	Heartbeat time.Duration
	// RequestTimeout bounds non-streaming API requests (default 30s;
	// negative disables). Streaming routes (/stream) and synchronous
	// campaign waits (?wait=true) manage their own lifetimes.
	RequestTimeout time.Duration
	// Engine is the server-wide default execution engine applied to
	// campaign requests that leave theirs empty: "" or "bytecode"
	// (default), "closure" or "tree-walk" (profipyd -engine).
	Engine string
}

// NewServer creates a SaaS server simulating a host with the given number
// of cores (experiments run N−1 in parallel) and default scheduler sizing.
func NewServer(cores int) *Server {
	s, err := NewServerWithOptions(Options{Cores: cores})
	if err != nil {
		// Unreachable: without a DataDir the store is memory-only and
		// construction cannot fail.
		panic(err)
	}
	return s
}

// NewServerWithOptions creates a SaaS server with explicit scheduler
// sizing and an optional persistent data directory, reloading any
// campaigns and job history a previous process stored there. Call Close
// to stop the worker pool and seal the store.
func NewServerWithOptions(opt Options) (*Server, error) {
	if opt.Cores <= 0 {
		opt.Cores = 4
	}
	if opt.Metrics == nil {
		opt.Metrics = obs.NewRegistry()
	}
	switch opt.Engine {
	case "", "bytecode", "closure", "tree-walk":
	default:
		return nil, fmt.Errorf("saas: unknown engine %q (want bytecode, closure or tree-walk)", opt.Engine)
	}
	store, err := resultstore.Open(opt.DataDir)
	if err != nil {
		return nil, err
	}
	store.Instrument(opt.Metrics)
	reqTimeout := opt.RequestTimeout
	if reqTimeout == 0 {
		reqTimeout = 30 * time.Second
	} else if reqTimeout < 0 {
		reqTimeout = 0
	}
	s := &Server{
		projects:   make(map[string]*Project),
		models:     faultmodel.NewRegistry(),
		campaigns:  make(map[string]*campaignRun),
		cores:      opt.Cores,
		engine:     opt.Engine,
		store:      store,
		reg:        opt.Metrics,
		reqTimeout: reqTimeout,
		fleet: fleet.New(fleet.Config{
			LeaseTTL:  opt.LeaseTTL,
			Heartbeat: opt.Heartbeat,
			Reg:       opt.Metrics,
		}),
	}
	s.recJobs = opt.Metrics.CounterVec("profipy_recovery_jobs_total",
		"Journaled jobs re-admitted at startup, by outcome (requeued, resumed, abandoned).", "outcome")
	s.recReplayed = opt.Metrics.Counter("profipy_recovery_replayed_records_total",
		"Stored records replayed into resumed campaigns instead of re-executed.")
	s.sched = scheduler.New(scheduler.Config{
		Workers:    opt.Workers,
		QueueDepth: opt.QueueDepth,
		Retain:     opt.RetainJobs,
		Metrics:    opt.Metrics,
		// Journal every terminal job so /api/v1/jobs history survives
		// restarts alongside the campaigns, and retire the job from the
		// write-ahead journal so the next boot does not re-admit it.
		OnFinish: func(st scheduler.Status) {
			_ = s.store.AppendJob(jobView(st))
			_ = s.store.AppendJournal(resultstore.JournalEntry{
				Job: st.ID, State: journalState(st.State), TimeMS: time.Now().UnixMilli(),
			})
		},
	})
	// Preload the paper's case study as a demo project.
	demo := &Project{ID: "demo-python-etcd", Name: "python-etcd", Files: map[string]string{}}
	for name, data := range kvclient.Sources() {
		demo.Files[name] = string(data)
	}
	s.projects[demo.ID] = demo
	retain := opt.RetainJobs
	if retain <= 0 {
		retain = 256
	}
	s.restore(retain)
	s.recover()
	return s, nil
}

// journalState maps a scheduler terminal state to its journal record
// state (running states never reach OnFinish).
func journalState(st scheduler.State) string {
	switch st {
	case scheduler.Done:
		return resultstore.JournalDone
	case scheduler.Canceled:
		return resultstore.JournalCanceled
	default:
		return resultstore.JournalFailed
	}
}

// restore reloads completed campaigns and terminal job history from the
// result store into the serving maps, so a restarted profipyd answers
// for work a previous process finished without re-running anything.
func (s *Server) restore(retainJobs int) {
	// Campaign IDs derive from job numbers, so the job counter must
	// clear every stored campaign — including ones whose job never made
	// the journal because the process crashed mid-run.
	maxCamp := 0
	for _, meta := range s.store.List() {
		var n int
		if _, err := fmt.Sscanf(meta.ID, "camp-%d", &n); err == nil && n > maxCamp {
			maxCamp = n
		}
		if meta.Status != resultstore.StatusDone && meta.Status != resultstore.StatusDegraded {
			continue // interrupted/canceled campaigns stay record-only
		}
		repData, err := s.store.Report(meta.ID)
		if err != nil {
			continue
		}
		var rep analysis.Report
		if err := json.Unmarshal(repData, &rep); err != nil {
			continue
		}
		summary := CampaignSummary{ID: meta.ID, Project: meta.Project}
		if meta.Summary != nil {
			_ = json.Unmarshal(meta.Summary, &summary)
		}
		run := &campaignRun{
			summary: summary,
			report:  &rep,
			text:    rep.Render("campaign " + meta.ID + " (" + meta.Name + ")"),
		}
		if meta.Phases != nil {
			_ = json.Unmarshal(meta.Phases, &run.phases)
		}
		s.campaigns[meta.ID] = run
	}
	// Reload terminal job snapshots: the journal is append-only, so
	// dedupe by ID (the newest snapshot wins) and keep only the most
	// recent retainJobs — matching the scheduler's in-memory retention
	// rather than the journal's lifetime length.
	latest := map[string]scheduler.Status{}
	var order []string
	for _, raw := range s.store.Jobs() {
		var v JobStatus
		if err := json.Unmarshal(raw, &v); err != nil || v.ID == "" {
			continue
		}
		st := scheduler.Status{
			ID: v.ID, Name: v.Project, State: v.State, Progress: v.Progress,
			PhaseMillis: v.PhaseMillis, Error: v.Error,
			EnqueuedMS: v.EnqueuedMS, StartedMS: v.StartedMS, FinishedMS: v.FinishedMS,
		}
		if v.Campaign != "" {
			st.Result = v.Campaign
		}
		if _, seen := latest[v.ID]; !seen {
			order = append(order, v.ID)
		}
		latest[v.ID] = st
	}
	if len(order) > retainJobs {
		order = order[len(order)-retainJobs:]
	}
	sts := make([]scheduler.Status, 0, len(order))
	for _, id := range order {
		sts = append(sts, latest[id])
	}
	s.sched.Restore(sts)
	s.sched.AdvanceIDs(maxCamp)
}

// Close stops the campaign scheduler — running campaigns are canceled,
// queued ones finish as canceled, the worker pool drains — then seals
// the result store so every streamed record is flushed to disk.
func (s *Server) Close() {
	s.sched.Close()
	_ = s.store.Close()
}

// Store exposes the campaign result store (read side: pagination and
// live follows). Never nil.
func (s *Server) Store() *resultstore.Store { return s.store }

// Metrics exposes the server's metric registry (the one behind
// GET /metrics). Never nil.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Fleet exposes the remote-worker coordinator. Never nil.
func (s *Server) Fleet() *fleet.Coordinator { return s.fleet }

// Handler returns the HTTP handler exposing the API, instrumented with
// per-route request metrics, plus the Prometheus scrape endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("POST /api/v1/projects", s.handleCreateProject)
	mux.HandleFunc("GET /api/v1/projects", s.handleListProjects)
	mux.HandleFunc("POST /api/v1/faultmodels", s.handleCreateModel)
	mux.HandleFunc("GET /api/v1/faultmodels", s.handleListModels)
	mux.HandleFunc("GET /api/v1/faultmodels/{name}", s.handleGetModel)
	mux.HandleFunc("POST /api/v1/campaigns", s.handleRunCampaign)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleListCampaigns)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleGetCampaign)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/text", s.handleGetCampaignText)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/records", s.handleGetCampaignRecords)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/stream", s.handleStreamCampaign)
	mux.HandleFunc("GET /api/v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancelJob)
	s.fleet.Mount(mux)
	// Metrics sit inside the timeout wrapper: TimeoutHandler serves the
	// inner handler with a shallow-copied request, so the mux-set
	// r.Pattern the route label comes from is only visible downstream
	// of it.
	handler := instrumentHTTP(s.reg, mux)
	if s.reqTimeout > 0 {
		// Per-route request timeout: every API route is bounded except
		// the ones that legitimately outlive it — record streaming
		// (needs Flusher, manages its own follow window) and the
		// synchronous campaign wait (bounded by the campaign itself).
		timed := http.TimeoutHandler(handler, s.reqTimeout, `{"error":"request timed out"}`)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/stream") ||
				(r.URL.Path == "/api/v1/campaigns" && r.Method == http.MethodPost && r.URL.Query().Get("wait") == "true") {
				handler.ServeHTTP(w, r)
				return
			}
			timed.ServeHTTP(w, r)
		})
	}
	return handler
}

func (s *Server) handleCreateProject(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	var p Project
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		httpError(w, http.StatusBadRequest, "bad project json: %v", err)
		return
	}
	if p.Name == "" || len(p.Files) == 0 {
		httpError(w, http.StatusBadRequest, "project needs a name and files")
		return
	}
	s.mu.Lock()
	s.nextID++
	p.ID = "proj-" + strconv.Itoa(s.nextID)
	s.projects[p.ID] = &p
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"id": p.ID})
}

func (s *Server) handleListProjects(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]map[string]any, 0, len(s.projects))
	ids := make([]string, 0, len(s.projects))
	for id := range s.projects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := s.projects[id]
		out = append(out, map[string]any{"id": p.ID, "name": p.Name, "files": len(p.Files)})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCreateModel(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	var m faultmodel.Model
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		httpError(w, http.StatusBadRequest, "bad model json: %v", err)
		return
	}
	if m.Name == "" {
		httpError(w, http.StatusBadRequest, "model needs a name")
		return
	}
	if err := m.Validate(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "model does not compile: %v", err)
		return
	}
	s.mu.Lock()
	s.models.Register(&m)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"name": m.Name})
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, s.models.Names())
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	m, ok := s.models.Get(r.PathValue("name"))
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such model")
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// buildCampaign validates a request and assembles the campaign to run.
// On failure it returns an HTTP status and message for the client.
func (s *Server) buildCampaign(req CampaignRequest) (*campaign.Campaign, string, int, string) {
	s.mu.RLock()
	proj, ok := s.projects[req.Project]
	s.mu.RUnlock()
	if !ok {
		return nil, "", http.StatusNotFound, fmt.Sprintf("no such project: %s", req.Project)
	}
	files := make(map[string][]byte, len(proj.Files))
	for name, content := range proj.Files {
		files[name] = []byte(content)
	}
	return s.buildCampaignFrom(req, proj.Name, files)
}

// buildCampaignFrom assembles a campaign from an explicit project-file
// snapshot instead of the live project map — the recovery path rebuilds
// journaled jobs this way, because uploaded projects are in-memory only
// and the journal carries its own copy of the files.
func (s *Server) buildCampaignFrom(req CampaignRequest, projName string, files map[string][]byte) (*campaign.Campaign, string, int, string) {
	specs := req.Specs
	if req.Model != "" {
		s.mu.RLock()
		m, ok := s.models.Get(req.Model)
		s.mu.RUnlock()
		if !ok {
			return nil, "", http.StatusNotFound, fmt.Sprintf("no such fault model: %s", req.Model)
		}
		specs = append(append([]faultmodel.Spec(nil), specs...), m.Specs...)
	}
	if len(specs) == 0 {
		return nil, "", http.StatusBadRequest, "campaign needs specs or a model"
	}
	if req.Entry == "" {
		return nil, "", http.StatusBadRequest, "campaign needs a workload entry function"
	}
	if len(files) == 0 {
		return nil, "", http.StatusBadRequest, "campaign needs project files"
	}
	if req.Engine == "" {
		req.Engine = s.engine
	}
	switch req.Engine {
	case "", "bytecode", "closure", "tree-walk":
	default:
		return nil, "", http.StatusBadRequest,
			fmt.Sprintf("unknown engine %q (want bytecode, closure or tree-walk)", req.Engine)
	}
	names := scanner.SortedNames(files)
	wlFiles := req.WorkloadFiles
	if len(wlFiles) == 0 {
		wlFiles = names
	}
	timeout := req.TimeoutSec
	if timeout <= 0 {
		timeout = 240
	}

	env := envFunc(req.Env)
	if env == nil {
		return nil, "", http.StatusBadRequest, fmt.Sprintf("unknown env %q (want kvclient or plain)", req.Env)
	}
	captureEnv, restoreEnv, _ := kvclient.EnvCaptureByName(req.Env)

	c := &campaign.Campaign{
		Name:      req.Project,
		Files:     files,
		ScanFiles: req.ScanFiles,
		Faultload: specs,
		Workload: workload.Config{
			Entry:        req.Entry,
			Files:        wlFiles,
			TimeoutNS:    timeout * 1_000_000_000,
			MaxSteps:     20_000_000,
			WallBudgetNS: req.ExperimentWallMS * 1_000_000,
			Rounds:       req.Rounds,
			Env:          env,
			CaptureEnv:   captureEnv,
			RestoreEnv:   restoreEnv,
		},
		Runtime:    sandbox.NewRuntime(sandbox.RuntimeConfig{Cores: s.cores, Seed: req.Seed}),
		Image:      sandbox.Image{Name: req.Project, MemMB: 256, IOMBps: 10},
		Seed:       req.Seed,
		SampleN:    req.SampleN,
		ReducePlan: req.ReducePlan,
		Analysis:   analysis.Config{Classes: req.Classes, Components: map[string][]string{}},
		// The service reads reports from the online aggregator and
		// records from the result store: no reason to materialize the
		// full record slice per campaign.
		DiscardRecords: true,
		Metrics:        s.reg,
		PrefixFork:     req.PrefixFork,
	}
	if req.Engine == "tree-walk" {
		c.TreeWalk = true
	} else {
		c.Engine = req.Engine
	}
	switch {
	case req.Remote:
		// The distributed engine: the campaign spec below is what a
		// worker rebuilds its execution context from, so it mirrors the
		// Campaign fields above — except the plan context, which the
		// campaign fills in (SetPlanContext) once scan and coverage ran.
		c.Executor = &executor.Remote{
			Coord: s.fleet,
			Spec: remote.CampaignSpec{
				Name:          req.Project,
				Files:         files,
				ScanFiles:     req.ScanFiles,
				Faultload:     specs,
				Entry:         req.Entry,
				WorkloadFiles: wlFiles,
				TimeoutNS:     timeout * 1_000_000_000,
				MaxSteps:      20_000_000,
				WallBudgetNS:  req.ExperimentWallMS * 1_000_000,
				Rounds:        req.Rounds,
				EnvName:       req.Env,
				ImageName:     req.Project,
				ImageMemMB:    256,
				ImageIOMBps:   10,
				Seed:          req.Seed,
				SampleN:       req.SampleN,
				ReducePlan:    req.ReducePlan,
				TreeWalk:      c.TreeWalk,
				Engine:        c.Engine,
			},
			Shards:         req.Shards,
			LocalWorkers:   s.cores - 1,
			WaitForWorkers: req.WaitForWorkers,
			Reg:            s.reg,
		}
	case req.Shards > 0:
		c.Executor = executor.Sharded{Shards: req.Shards, Workers: req.ShardWorkers, Reg: s.reg}
	}
	return c, projName, 0, ""
}

// campaignIDFor derives the campaign ID from its job ID ("job-7" →
// "camp-7"): deterministic before the job runs, so live record streams
// are addressable while the campaign is still executing, and collision
// free across restarts because restored job history advances the
// scheduler's ID counter.
func campaignIDFor(jobID string) string {
	return "camp-" + strings.TrimPrefix(jobID, "job-")
}

// summaryFor builds the list-view summary of a finished run.
func summaryFor(id, project string, res *campaign.Result) CampaignSummary {
	return CampaignSummary{
		ID: id, Project: project,
		Points: res.Report.Total, Covered: res.Report.Covered, Failures: res.Report.Failures,
		Mutated: res.Mutated, Injected: res.Injected,
	}
}

// storeCampaign files a finished run under its campaign ID.
func (s *Server) storeCampaign(id, project, projName string, res *campaign.Result) {
	s.mu.Lock()
	s.campaigns[id] = &campaignRun{
		summary: summaryFor(id, project, res),
		report:  res.Report,
		text:    res.Report.Render("campaign " + id + " (" + projName + ")"),
	}
	s.mu.Unlock()
}

// attachPhases records a finished campaign's phase timeline on its
// stored run (no-op for unknown IDs).
func (s *Server) attachPhases(id string, phases []trace.Span) {
	s.mu.Lock()
	if run, ok := s.campaigns[id]; ok {
		run.phases = phases
	}
	s.mu.Unlock()
}

// journaledJob is the write-ahead journal payload of an accepted
// campaign job: everything needed to rebuild and re-run (or resume) the
// campaign in a later process. The faultload arrives pre-resolved and
// the project files are snapshotted, because the model registry and the
// project map are in-memory only and may be empty after a restart.
type journaledJob struct {
	Request CampaignRequest   `json:"request"`
	Project string            `json:"project"`
	Files   map[string][]byte `json:"files"`
}

// journalAccepted write-ahead-journals an accepted campaign job as
// queued. Called between Submit and the job-ID handoff that lets the
// task run, so the journal entry is durable before any work starts.
func (s *Server) journalAccepted(jobID string, req CampaignRequest, projName string, c *campaign.Campaign) {
	jreq := req
	jreq.Specs = c.Faultload // resolved: model + inline specs merged
	jreq.Model = ""
	payload, err := json.Marshal(journaledJob{Request: jreq, Project: projName, Files: c.Files})
	if err != nil {
		payload = nil // journal the lifecycle anyway; recovery will abandon it
	}
	_ = s.store.AppendJournal(resultstore.JournalEntry{
		Job: jobID, State: resultstore.JournalQueued,
		Campaign: campaignIDFor(jobID), Name: req.Project,
		Payload: payload, TimeMS: time.Now().UnixMilli(),
	})
}

// campaignTask builds the scheduler task that runs one campaign.
// jobIDFn supplies the job ID once it is known — a freshly submitted
// task learns it from the handler after Submit returns, a recovered
// task knows it upfront. If the campaign already has records in the
// store (a re-admitted mid-flight job), the task resumes: stored
// records are replayed into the campaign and only the missing
// experiments execute, producing a report byte-identical to an
// uninterrupted run.
func (s *Server) campaignTask(req CampaignRequest, projName string, c *campaign.Campaign, jobIDFn func() string) scheduler.Task {
	return func(ctx context.Context, report func(scheduler.Progress)) (any, error) {
		jobID := jobIDFn()
		campID := campaignIDFor(jobID)
		// The remote executor keys its fleet job, leases and record
		// streams by the campaign's public ID, so workers and operators
		// see the same name everywhere.
		if rm, ok := c.Executor.(*executor.Remote); ok {
			rm.CampaignID = campID
		}
		// Every log line below this point carries the job and campaign
		// IDs, so one campaign's records can be grepped out of a busy
		// daemon's output.
		ctx = obs.WithLog(ctx, "job", jobID, "campaign", campID)
		_ = s.store.AppendJournal(resultstore.JournalEntry{
			Job: jobID, State: resultstore.JournalRunning,
			Campaign: campID, Name: req.Project, TimeMS: time.Now().UnixMilli(),
		})
		c.OnProgress = func(p campaign.Progress) {
			report(scheduler.Progress{Phase: p.Phase, Done: p.Done, Total: p.Total})
			if s.testProgressHook != nil {
				s.testProgressHook(p)
			}
		}
		// Stream every record into the store as it completes: live
		// NDJSON followers and record pages see the campaign grow, and
		// a shutdown mid-campaign loses nothing that reached the sink.
		var writer *resultstore.Writer
		var werr error
		if meta, ok := s.store.Get(campID); ok {
			// The campaign outlived a previous process.
			if meta.Status == resultstore.StatusDone || meta.Status == resultstore.StatusDegraded {
				// It finished before the crash — only the job's terminal
				// state was lost. restore() already filed the report.
				obs.Log(ctx).Info("campaign already complete, skipping re-run")
				return campID, nil
			}
			writer, werr = s.store.ResumeCampaign(campID)
			if werr == nil {
				c.Resume = s.loadResume(campID)
				s.recReplayed.Add(float64(len(c.Resume)))
				obs.Log(ctx).Info("resuming campaign from stored records",
					"replayed", len(c.Resume))
			}
		} else {
			writer, werr = s.store.StartCampaign(resultstore.Meta{
				ID: campID, Project: req.Project, Name: projName,
			})
		}
		if werr != nil {
			// The campaign still runs and reports from memory, but its
			// records endpoints will 404 — say so where an operator
			// can see it.
			obs.Log(ctx).Warn("record persistence unavailable", "err", werr)
		} else {
			c.Sink = executor.SinkFunc(func(idx int, rec analysis.Record) {
				_ = writer.Append(rec)
			})
		}
		res, err := c.RunContext(ctx)
		if err != nil {
			if writer != nil {
				status := resultstore.StatusFailed
				if errors.Is(err, context.Canceled) {
					status = resultstore.StatusCanceled
				}
				if aerr := writer.Abort(status); aerr != nil {
					obs.Log(ctx).Error("record persistence failed", "err", aerr)
				}
			}
			return nil, err
		}
		storeStart := time.Now()
		s.storeCampaign(campID, req.Project, projName, res)
		// The "store" phase (report rendering + in-memory filing) extends
		// the campaign's own timeline; its offsets continue from the last
		// recorded phase so the whole span set shares one time base.
		base := int64(0)
		for _, sp := range res.Phases {
			if sp.EndNS > base {
				base = sp.EndNS
			}
		}
		res.Phases = append(res.Phases, trace.Span{
			Name: "store", Component: "saas",
			StartNS: base, EndNS: base + time.Since(storeStart).Nanoseconds(),
		})
		s.attachPhases(campID, res.Phases)
		if writer != nil {
			_ = writer.SetPhases(res.Phases)
			// Finish surfaces the stream's first write error: the report
			// itself is safe in memory, but clients paging the stored
			// records would see silently truncated data, so make the
			// failure loud.
			if ferr := writer.Finish(resultstore.StatusDone, summaryFor(campID, req.Project, res), res.Report); ferr != nil {
				obs.Log(ctx).Error("record persistence failed", "err", ferr)
			}
		}
		obs.Log(ctx).Info("campaign done",
			"points", res.Report.Total, "covered", res.Report.Covered,
			"failures", res.Report.Failures, "records", res.Mutated+res.Injected,
			"replayed", res.Replayed)
		return campID, nil
	}
}

// loadResume pages every stored record of a campaign back into memory
// for replay. Undecodable lines are skipped — their experiments simply
// re-execute, which reproduces the identical record bytes.
func (s *Server) loadResume(campID string) []analysis.Record {
	var out []analysis.Record
	var after int64
	for {
		page, err := s.store.Records(campID, after, 1000)
		if err != nil || len(page.Records) == 0 {
			return out
		}
		for _, raw := range page.Records {
			var rec analysis.Record
			if json.Unmarshal(raw, &rec) == nil {
				out = append(out, rec)
			}
		}
		if page.Next <= after {
			return out
		}
		after = page.Next
	}
}

// recover replays the write-ahead job journal at startup and re-admits
// every job a previous process accepted but never finished: jobs that
// were still queued re-run from scratch, mid-flight jobs resume from
// their stored records (campaignTask detects the existing campaign).
// Jobs whose payload cannot be rebuilt are journaled as failed so they
// stop pending, with the failure visible in the job history.
func (s *Server) recover() {
	for _, e := range s.store.PendingJobs() {
		outcome := "requeued"
		if e.State == resultstore.JournalRunning {
			outcome = "resumed"
		}
		var payload journaledJob
		var c *campaign.Campaign
		projName := ""
		status, msg := 0, ""
		if err := json.Unmarshal(e.Payload, &payload); err != nil || payload.Request.Project == "" {
			status, msg = http.StatusBadRequest, "journal payload unusable"
		} else {
			c, projName, status, msg = s.buildCampaignFrom(payload.Request, payload.Project, payload.Files)
		}
		if status == 0 {
			jobID := e.Job
			task := s.campaignTask(payload.Request, projName, c, func() string { return jobID })
			if err := s.sched.SubmitID(jobID, payload.Request.Project, task); err != nil {
				status, msg = http.StatusServiceUnavailable, err.Error()
			}
		}
		if status != 0 {
			outcome = "abandoned"
			obs.Log(context.Background()).Warn("journaled job abandoned at recovery",
				"job", e.Job, "campaign", e.Campaign, "reason", msg)
			_ = s.store.AppendJournal(resultstore.JournalEntry{
				Job: e.Job, State: resultstore.JournalFailed, TimeMS: time.Now().UnixMilli(),
			})
			failed := scheduler.Status{
				ID: e.Job, Name: e.Name, State: scheduler.Failed,
				Error:      "recovery failed: " + msg,
				EnqueuedMS: e.TimeMS, FinishedMS: time.Now().UnixMilli(),
			}
			_ = s.store.AppendJob(jobView(failed))
			s.sched.Restore([]scheduler.Status{failed})
		} else {
			obs.Log(context.Background()).Info("journaled job re-admitted",
				"job", e.Job, "campaign", e.Campaign, "outcome", outcome)
		}
		s.recJobs.With(outcome).Inc()
	}
}

// retryAfterHint renders the Retry-After seconds of a queue-full 429
// from the scheduler's load estimate, rounded up and clamped to
// [1, 300]; "5" when no campaign has finished yet (nothing to
// estimate from).
func (s *Server) retryAfterHint() string {
	est, ok := s.sched.RetryAfterEstimate()
	if !ok {
		return "5"
	}
	secs := (est + time.Second - 1) / time.Second
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return strconv.FormatInt(int64(secs), 10)
}

// handleRunCampaign validates the request synchronously, enqueues the
// campaign on the scheduler, and returns 202 with a job ID. With
// ?wait=true it blocks until the job finishes and answers like the old
// synchronous API (201 + report).
func (s *Server) handleRunCampaign(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	var req CampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad campaign json: %v", err)
		return
	}
	c, projName, status, msg := s.buildCampaign(req)
	if status != 0 {
		httpError(w, status, "%s", msg)
		return
	}

	// The campaign ID derives from the job ID, which Submit allocates
	// after the task closure exists; the buffered channel hands it in.
	jobIDCh := make(chan string, 1)
	task := s.campaignTask(req, projName, c, func() string { return <-jobIDCh })
	jobID, err := s.sched.Submit(req.Project, task)
	if err != nil {
		if errors.Is(err, scheduler.ErrQueueFull) {
			// Back-pressure, not an outage: the queue drains as campaigns
			// finish, so tell the client when to come back — queue depth
			// times the recent mean campaign duration, spread across the
			// worker pool, clamped to [1s, 300s]. Before any campaign has
			// finished there is no estimate; fall back to a fixed hint.
			w.Header().Set("Retry-After", s.retryAfterHint())
			httpError(w, http.StatusTooManyRequests, "cannot schedule campaign: %v", err)
			return
		}
		httpError(w, http.StatusServiceUnavailable, "cannot schedule campaign: %v", err)
		return
	}
	// Write-ahead journal the accepted job before the task may proceed
	// (it blocks on the job ID until the send below): a crash after this
	// point leaves a durable record to re-admit the job from.
	s.journalAccepted(jobID, req, projName, c)
	jobIDCh <- jobID

	if r.URL.Query().Get("wait") != "true" {
		writeJSON(w, http.StatusAccepted, map[string]string{"job": jobID})
		return
	}
	st, ok := s.sched.Wait(jobID)
	if !ok {
		// Only possible when the finished job was already evicted by the
		// retention limit before we could read it.
		httpError(w, http.StatusInternalServerError, "job %s evicted before its result could be read", jobID)
		return
	}
	switch st.State {
	case scheduler.Done:
		campID := st.Result.(string)
		s.mu.RLock()
		run := s.campaigns[campID]
		s.mu.RUnlock()
		writeJSON(w, http.StatusCreated, map[string]any{"id": campID, "job": jobID, "report": run.report})
	case scheduler.Canceled:
		httpError(w, http.StatusConflict, "campaign canceled")
	default:
		httpError(w, http.StatusUnprocessableEntity, "campaign failed: %s", st.Error)
	}
}

// jobView converts a scheduler snapshot to the API shape.
func jobView(st scheduler.Status) JobStatus {
	out := JobStatus{
		ID: st.ID, Project: st.Name, State: st.State, Progress: st.Progress,
		PhaseMillis: st.PhaseMillis, Attempts: st.Attempts, Error: st.Error,
		EnqueuedMS: st.EnqueuedMS, StartedMS: st.StartedMS, FinishedMS: st.FinishedMS,
	}
	if id, ok := st.Result.(string); ok {
		out.Campaign = id
	}
	return out
}

// jobStatus is jobView plus the live-campaign link: a running job
// already has a campaign in the result store (records streaming in),
// so clients can follow /campaigns/{id}/stream before the job is done.
func (s *Server) jobStatus(st scheduler.Status) JobStatus {
	out := jobView(st)
	if out.Campaign == "" && out.State == scheduler.Running {
		if id := campaignIDFor(out.ID); id != out.ID {
			if _, ok := s.store.Get(id); ok {
				out.Campaign = id
			}
		}
	}
	return out
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	sts := s.sched.List()
	out := make([]JobStatus, len(sts))
	for i, st := range sts {
		out[i] = s.jobStatus(st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Status(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.jobStatus(st))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Cancel(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusAccepted, jobView(st))
}

func (s *Server) handleListCampaigns(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.campaigns))
	for id := range s.campaigns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]CampaignSummary, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.campaigns[id].summary)
	}
	writeJSON(w, http.StatusOK, out)
}

// campaignView is the GET /campaigns/{id} response: the full analysis
// report (flattened, so existing clients decoding into analysis.Report
// are unaffected) plus the machine-readable phase timeline.
type campaignView struct {
	*analysis.Report
	Phases []trace.Span `json:"phases,omitempty"`
}

func (s *Server) handleGetCampaign(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	run, ok := s.campaigns[r.PathValue("id")]
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	writeJSON(w, http.StatusOK, campaignView{Report: run.report, Phases: run.phases})
}

func (s *Server) handleGetCampaignText(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	run, ok := s.campaigns[r.PathValue("id")]
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	// Reports grow with component and fault-type cardinality; cap the
	// response (rune-safely — report tables can carry multi-byte file
	// names) so one campaign cannot produce an unbounded text body.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	_, _ = w.Write([]byte(truncateText(run.text, maxTextReportBytes)))
}

// truncateText cuts s to at most max bytes without splitting a UTF-8
// rune, marking the cut.
func truncateText(s string, max int) string {
	if len(s) <= max {
		return s
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "\n…(truncated)\n"
}

// handleGetCampaignRecords serves one page of a campaign's experiment
// records from the result store. Cursor pagination: `after` is the
// number of records already consumed (the `next` of the previous page),
// `limit` caps the page size.
func (s *Server) handleGetCampaignRecords(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	after, err := queryInt64(r, "after", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad after cursor: %v", err)
		return
	}
	limit, err := queryInt64(r, "limit", 100)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad limit: %v", err)
		return
	}
	if limit > 1000 {
		limit = 1000
	}
	page, err := s.store.Records(id, after, int(limit))
	if err != nil {
		if errors.Is(err, resultstore.ErrNotFound) {
			httpError(w, http.StatusNotFound, "no such campaign")
			return
		}
		httpError(w, http.StatusInternalServerError, "read records: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

// handleStreamCampaign serves a campaign's records as live NDJSON: one
// record per line, flushed as experiments complete, ending when the
// campaign finishes (finished campaigns replay and end immediately).
// `?after=<cursor>` resumes mid-stream.
func (s *Server) handleStreamCampaign(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	after, err := queryInt64(r, "after", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad after cursor: %v", err)
		return
	}
	if _, ok := s.store.Get(id); !ok {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	err = s.store.Follow(r.Context(), id, after, func(seq int64, line json.RawMessage) error {
		if _, werr := w.Write(append(line, '\n')); werr != nil {
			return werr
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	// A store-side failure truncates the stream indistinguishably from
	// completion for the client; leave a server-side trace. Client
	// disconnects and shutdown cancellation are normal stream ends.
	if err != nil && !errors.Is(err, context.Canceled) {
		obs.Log(r.Context()).Warn("record stream truncated", "campaign", id, "err", err)
	}
}

// queryInt64 parses an optional integer query parameter.
func queryInt64(r *http.Request, name string, def int64) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	return strconv.ParseInt(raw, 10, 64)
}

// envFunc resolves the host environment for experiment interpreters.
// The name table lives in kvclient.EnvByName, shared with the remote
// worker agent so both sides resolve campaign specs identically.
func envFunc(name string) func(it *interp.Interp, c *sandbox.Container) {
	fn, ok := kvclient.EnvByName(name)
	if !ok {
		return nil
	}
	return fn
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// DemoProjectID is the preloaded case-study project.
const DemoProjectID = "demo-python-etcd"

// DemoCampaignRequest builds the request reproducing one of the §V
// campaigns ("A", "B" or "C") against the demo project, or the mixed
// compile-time + runtime injection campaign ("R"). Runtime faultloads
// need no dedicated API surface: the specs' DSL trigger/action clauses
// and the Trigger/Action spec fields travel through the same
// CampaignRequest.Specs field as compile-time ones.
func DemoCampaignRequest(which string, seed int64) (CampaignRequest, error) {
	req := CampaignRequest{
		Project: DemoProjectID,
		Entry:   "Workload",
		Env:     "kvclient",
		Seed:    seed,
		Classes: kvclient.AnalysisConfig().Classes,
	}
	switch strings.ToUpper(which) {
	case "A":
		req.Specs = kvclient.CampaignAFaultload()
		req.ScanFiles = []string{kvclient.FileClient, kvclient.FileLock, kvclient.FileAuth}
	case "B":
		req.Specs = kvclient.CampaignBFaultload()
		req.ScanFiles = []string{kvclient.FileWorkload}
	case "C":
		req.Specs = kvclient.CampaignCFaultload()
		req.ScanFiles = []string{kvclient.FileWorkload}
	case "R":
		req.Specs = kvclient.CampaignRFaultload()
		req.ScanFiles = []string{kvclient.FileClient, kvclient.FileLock, kvclient.FileAuth}
	default:
		return req, fmt.Errorf("unknown demo campaign %q (want A, B, C or R)", which)
	}
	req.WorkloadFiles = []string{kvclient.FileClient, kvclient.FileLock, kvclient.FileAuth, kvclient.FileWorkload}
	return req, nil
}
