// Package saas implements the software-as-a-service workflow of the
// paper: an HTTP/JSON API through which users upload the target source,
// configure faultloads (DSL specs or saved fault models) and workloads,
// launch campaigns, and retrieve failure-analysis reports. It is the
// substitute for ProFIPy's web front end, minus the browser UI.
package saas

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"profipy/internal/analysis"
	"profipy/internal/campaign"
	"profipy/internal/faultmodel"
	"profipy/internal/interp"
	"profipy/internal/kvclient"
	"profipy/internal/sandbox"
	"profipy/internal/workload"
)

// Project is an uploaded target: named source files plus the workload
// entry configuration.
type Project struct {
	ID    string            `json:"id"`
	Name  string            `json:"name"`
	Files map[string]string `json:"files"`
}

// CampaignRequest configures one campaign run.
type CampaignRequest struct {
	Project string `json:"project"`
	// Model selects a registered fault model by name; Specs supplies an
	// inline faultload instead.
	Model string            `json:"model,omitempty"`
	Specs []faultmodel.Spec `json:"specs,omitempty"`
	// ScanFiles restricts scanning to these files (empty = all).
	ScanFiles []string `json:"scanFiles,omitempty"`
	// Workload execution settings.
	Entry         string   `json:"entry"`
	WorkloadFiles []string `json:"workloadFiles,omitempty"`
	TimeoutSec    int64    `json:"timeoutSec,omitempty"`
	// Env selects the host environment: "kvclient" (etcd case study) or
	// "plain" (hooks only).
	Env string `json:"env,omitempty"`
	// SampleN caps experiments; ReducePlan prunes uncovered points.
	SampleN    int   `json:"sampleN,omitempty"`
	ReducePlan bool  `json:"reducePlan,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
	// Classes are user-defined failure modes.
	Classes []analysis.FailureClass `json:"classes,omitempty"`
}

// CampaignSummary is the list view of a finished campaign.
type CampaignSummary struct {
	ID       string `json:"id"`
	Project  string `json:"project"`
	Points   int    `json:"points"`
	Covered  int    `json:"covered"`
	Failures int    `json:"failures"`
}

// campaignRun stores a finished campaign.
type campaignRun struct {
	summary CampaignSummary
	report  *analysis.Report
	text    string
}

// Server is the SaaS API server state.
type Server struct {
	mu        sync.Mutex
	projects  map[string]*Project
	models    *faultmodel.Registry
	campaigns map[string]*campaignRun
	nextID    int
	cores     int
}

// NewServer creates a SaaS server simulating a host with the given number
// of cores (experiments run N−1 in parallel).
func NewServer(cores int) *Server {
	s := &Server{
		projects:  make(map[string]*Project),
		models:    faultmodel.NewRegistry(),
		campaigns: make(map[string]*campaignRun),
		cores:     cores,
	}
	// Preload the paper's case study as a demo project.
	demo := &Project{ID: "demo-python-etcd", Name: "python-etcd", Files: map[string]string{}}
	for name, data := range kvclient.Sources() {
		demo.Files[name] = string(data)
	}
	s.projects[demo.ID] = demo
	return s
}

// Handler returns the HTTP handler exposing the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/projects", s.handleCreateProject)
	mux.HandleFunc("GET /api/v1/projects", s.handleListProjects)
	mux.HandleFunc("POST /api/v1/faultmodels", s.handleCreateModel)
	mux.HandleFunc("GET /api/v1/faultmodels", s.handleListModels)
	mux.HandleFunc("GET /api/v1/faultmodels/{name}", s.handleGetModel)
	mux.HandleFunc("POST /api/v1/campaigns", s.handleRunCampaign)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleListCampaigns)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleGetCampaign)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/text", s.handleGetCampaignText)
	return mux
}

func (s *Server) handleCreateProject(w http.ResponseWriter, r *http.Request) {
	var p Project
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		httpError(w, http.StatusBadRequest, "bad project json: %v", err)
		return
	}
	if p.Name == "" || len(p.Files) == 0 {
		httpError(w, http.StatusBadRequest, "project needs a name and files")
		return
	}
	s.mu.Lock()
	s.nextID++
	p.ID = "proj-" + strconv.Itoa(s.nextID)
	s.projects[p.ID] = &p
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"id": p.ID})
}

func (s *Server) handleListProjects(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]map[string]any, 0, len(s.projects))
	ids := make([]string, 0, len(s.projects))
	for id := range s.projects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := s.projects[id]
		out = append(out, map[string]any{"id": p.ID, "name": p.Name, "files": len(p.Files)})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCreateModel(w http.ResponseWriter, r *http.Request) {
	var m faultmodel.Model
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		httpError(w, http.StatusBadRequest, "bad model json: %v", err)
		return
	}
	if m.Name == "" {
		httpError(w, http.StatusBadRequest, "model needs a name")
		return
	}
	if err := m.Validate(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "model does not compile: %v", err)
		return
	}
	s.mu.Lock()
	s.models.Register(&m)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]string{"name": m.Name})
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, s.models.Names())
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	m, ok := s.models.Get(r.PathValue("name"))
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such model")
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleRunCampaign(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad campaign json: %v", err)
		return
	}
	s.mu.Lock()
	proj, ok := s.projects[req.Project]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such project: %s", req.Project)
		return
	}
	specs := req.Specs
	if req.Model != "" {
		s.mu.Lock()
		m, ok := s.models.Get(req.Model)
		s.mu.Unlock()
		if !ok {
			httpError(w, http.StatusNotFound, "no such fault model: %s", req.Model)
			return
		}
		specs = append(append([]faultmodel.Spec(nil), specs...), m.Specs...)
	}
	if len(specs) == 0 {
		httpError(w, http.StatusBadRequest, "campaign needs specs or a model")
		return
	}
	if req.Entry == "" {
		httpError(w, http.StatusBadRequest, "campaign needs a workload entry function")
		return
	}

	files := make(map[string][]byte, len(proj.Files))
	names := make([]string, 0, len(proj.Files))
	for name, content := range proj.Files {
		files[name] = []byte(content)
		names = append(names, name)
	}
	sort.Strings(names)
	wlFiles := req.WorkloadFiles
	if len(wlFiles) == 0 {
		wlFiles = names
	}
	timeout := req.TimeoutSec
	if timeout <= 0 {
		timeout = 240
	}

	env := envFunc(req.Env)
	if env == nil {
		httpError(w, http.StatusBadRequest, "unknown env %q (want kvclient or plain)", req.Env)
		return
	}

	c := &campaign.Campaign{
		Name:      req.Project,
		Files:     files,
		ScanFiles: req.ScanFiles,
		Faultload: specs,
		Workload: workload.Config{
			Entry:     req.Entry,
			Files:     wlFiles,
			TimeoutNS: timeout * 1_000_000_000,
			MaxSteps:  20_000_000,
			Env:       env,
		},
		Runtime:    sandbox.NewRuntime(sandbox.RuntimeConfig{Cores: s.cores, Seed: req.Seed}),
		Image:      sandbox.Image{Name: req.Project, MemMB: 256, IOMBps: 10},
		Seed:       req.Seed,
		SampleN:    req.SampleN,
		ReducePlan: req.ReducePlan,
		Analysis:   analysis.Config{Classes: req.Classes, Components: map[string][]string{}},
	}
	res, err := c.Run()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "campaign failed: %v", err)
		return
	}

	s.mu.Lock()
	s.nextID++
	id := "camp-" + strconv.Itoa(s.nextID)
	run := &campaignRun{
		summary: CampaignSummary{
			ID: id, Project: req.Project,
			Points: res.Report.Total, Covered: res.Report.Covered, Failures: res.Report.Failures,
		},
		report: res.Report,
		text:   res.Report.Render("campaign " + id + " (" + proj.Name + ")"),
	}
	s.campaigns[id] = run
	s.mu.Unlock()

	writeJSON(w, http.StatusCreated, map[string]any{"id": id, "report": res.Report})
}

func (s *Server) handleListCampaigns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.campaigns))
	for id := range s.campaigns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]CampaignSummary, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.campaigns[id].summary)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetCampaign(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	run, ok := s.campaigns[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	writeJSON(w, http.StatusOK, run.report)
}

func (s *Server) handleGetCampaignText(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	run, ok := s.campaigns[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(run.text))
}

// envFunc resolves the host environment for experiment interpreters.
func envFunc(name string) func(it *interp.Interp, c *sandbox.Container) {
	switch name {
	case "", "kvclient":
		return func(it *interp.Interp, c *sandbox.Container) { kvclient.InstallEnv(it, c) }
	case "plain":
		return func(it *interp.Interp, c *sandbox.Container) { sandbox.InstallHooks(it, c) }
	default:
		return nil
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// DemoProjectID is the preloaded case-study project.
const DemoProjectID = "demo-python-etcd"

// DemoCampaignRequest builds the request reproducing one of the §V
// campaigns ("A", "B" or "C") against the demo project.
func DemoCampaignRequest(which string, seed int64) (CampaignRequest, error) {
	req := CampaignRequest{
		Project: DemoProjectID,
		Entry:   "Workload",
		Env:     "kvclient",
		Seed:    seed,
		Classes: kvclient.AnalysisConfig().Classes,
	}
	switch strings.ToUpper(which) {
	case "A":
		req.Specs = kvclient.CampaignAFaultload()
		req.ScanFiles = []string{kvclient.FileClient, kvclient.FileLock, kvclient.FileAuth}
	case "B":
		req.Specs = kvclient.CampaignBFaultload()
		req.ScanFiles = []string{kvclient.FileWorkload}
	case "C":
		req.Specs = kvclient.CampaignCFaultload()
		req.ScanFiles = []string{kvclient.FileWorkload}
	default:
		return req, fmt.Errorf("unknown demo campaign %q (want A, B or C)", which)
	}
	req.WorkloadFiles = []string{kvclient.FileClient, kvclient.FileLock, kvclient.FileAuth, kvclient.FileWorkload}
	return req, nil
}
