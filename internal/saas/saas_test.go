package saas

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"profipy/internal/faultmodel"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := NewServer(4)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

func TestProjectLifecycle(t *testing.T) {
	ts := newTestServer(t)
	resp, out := postJSON(t, ts.URL+"/api/v1/projects", map[string]any{
		"name":  "myapp",
		"files": map[string]string{"main.go": "package main\nfunc F() any { return nil }\n"},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var id string
	_ = json.Unmarshal(out["id"], &id)
	if !strings.HasPrefix(id, "proj-") {
		t.Fatalf("id = %q", id)
	}
	code, body := getBody(t, ts.URL+"/api/v1/projects")
	if code != 200 || !strings.Contains(body, "myapp") || !strings.Contains(body, DemoProjectID) {
		t.Fatalf("list = %d %s", code, body)
	}
}

func TestProjectValidation(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/api/v1/projects", map[string]any{"name": "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestFaultModelRegistrationAndRetrieval(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/api/v1/faultmodels", map[string]any{
		"name": "custom",
		"specs": []map[string]string{
			{"name": "omit", "type": "MFC", "dsl": "change { $CALL{name=f}(...) } into { }"},
		},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	code, body := getBody(t, ts.URL+"/api/v1/faultmodels")
	if code != 200 || !strings.Contains(body, "custom") || !strings.Contains(body, "gswfit") {
		t.Fatalf("models = %s", body)
	}
	code, body = getBody(t, ts.URL+"/api/v1/faultmodels/gswfit")
	if code != 200 || !strings.Contains(body, "MIFS") {
		t.Fatalf("gswfit = %d %s", code, body)
	}
	code, _ = getBody(t, ts.URL+"/api/v1/faultmodels/nope")
	if code != http.StatusNotFound {
		t.Fatalf("missing model = %d", code)
	}
}

func TestFaultModelRejectsBadDSL(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/api/v1/faultmodels", map[string]any{
		"name":  "bad",
		"specs": []map[string]string{{"name": "x", "dsl": "change { $BOGUS } into { }"}},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
}

func TestDemoCampaignEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	req, err := DemoCampaignRequest("A", 101)
	if err != nil {
		t.Fatal(err)
	}
	req.SampleN = 6 // keep the test fast
	resp, out := postJSON(t, ts.URL+"/api/v1/campaigns?wait=true", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	var id string
	_ = json.Unmarshal(out["id"], &id)

	code, body := getBody(t, ts.URL+"/api/v1/campaigns/"+id)
	if code != 200 || !strings.Contains(body, "\"total\": 6") {
		t.Fatalf("campaign json = %d %s", code, body)
	}
	code, text := getBody(t, ts.URL+"/api/v1/campaigns/"+id+"/text")
	if code != 200 || !strings.Contains(text, "experiments:") {
		t.Fatalf("campaign text = %d %s", code, text)
	}
	code, body = getBody(t, ts.URL+"/api/v1/campaigns")
	if code != 200 || !strings.Contains(body, id) {
		t.Fatalf("campaign list = %s", body)
	}
}

func TestCampaignValidation(t *testing.T) {
	ts := newTestServer(t)
	tests := []struct {
		name string
		req  map[string]any
		want int
	}{
		{"missing project", map[string]any{"project": "nope", "entry": "W"}, http.StatusNotFound},
		{"no specs", map[string]any{"project": DemoProjectID, "entry": "W"}, http.StatusBadRequest},
		{"no entry", map[string]any{"project": DemoProjectID,
			"specs": []map[string]string{{"name": "s", "dsl": "change { f() } into { }"}}}, http.StatusBadRequest},
		{"bad env", map[string]any{"project": DemoProjectID, "entry": "Workload", "env": "weird",
			"specs": []map[string]string{{"name": "s", "dsl": "change { f() } into { }"}}}, http.StatusBadRequest},
		{"unknown model", map[string]any{"project": DemoProjectID, "entry": "Workload", "model": "nope"}, http.StatusNotFound},
	}
	for _, tc := range tests {
		resp, _ := postJSON(t, ts.URL+"/api/v1/campaigns", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestDemoCampaignRequestValidation(t *testing.T) {
	if _, err := DemoCampaignRequest("Z", 1); err == nil {
		t.Error("unknown demo campaign should fail")
	}
	for _, which := range []string{"A", "b", "C", "r"} {
		if _, err := DemoCampaignRequest(which, 1); err != nil {
			t.Errorf("DemoCampaignRequest(%s): %v", which, err)
		}
	}
}

// TestRuntimeFaultloadCampaignAPI runs the mixed compile-time + runtime
// demo campaign through the HTTP API: runtime specs (DSL trigger/action
// clauses and the Trigger/Action spec fields) travel through the same
// faultload field, the summary splits experiments by injection kind,
// and the report carries the per-fault trigger table.
func TestRuntimeFaultloadCampaignAPI(t *testing.T) {
	ts := newTestServer(t)
	req, err := DemoCampaignRequest("R", 404)
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postJSON(t, ts.URL+"/api/v1/campaigns?wait=true", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d: %v", resp.StatusCode, out)
	}
	var id string
	_ = json.Unmarshal(out["id"], &id)

	code, body := getBody(t, ts.URL+"/api/v1/campaigns/"+id)
	if code != 200 || !strings.Contains(body, "\"triggers\"") {
		t.Fatalf("report should carry the runtime trigger table: %d %s", code, body)
	}
	if !strings.Contains(body, "rt-flaky-io") || !strings.Contains(body, "rt-slow-dependency") {
		t.Fatalf("report should aggregate every runtime fault: %s", body)
	}

	code, body = getBody(t, ts.URL+"/api/v1/campaigns")
	if code != 200 {
		t.Fatalf("campaign list = %d", code)
	}
	var summaries []CampaignSummary
	if err := json.Unmarshal([]byte(body), &summaries); err != nil {
		t.Fatalf("campaign list json: %v", err)
	}
	var sum *CampaignSummary
	for i := range summaries {
		if summaries[i].ID == id {
			sum = &summaries[i]
		}
	}
	if sum == nil {
		t.Fatalf("campaign %s missing from list", id)
	}
	if sum.Injected == 0 || sum.Mutated == 0 {
		t.Errorf("mixed campaign summary should count both kinds: %+v", sum)
	}
	if sum.Injected+sum.Mutated != sum.Points {
		t.Errorf("kind split (%d+%d) does not cover all %d points", sum.Mutated, sum.Injected, sum.Points)
	}

	code, text := getBody(t, ts.URL+"/api/v1/campaigns/"+id+"/text")
	if code != 200 || !strings.Contains(text, "runtime injectors:") {
		t.Fatalf("text report should render the injector table: %d %s", code, text)
	}
}

func TestUploadedProjectCampaignPlainEnv(t *testing.T) {
	ts := newTestServer(t)
	target := `package main

func work(n int) any {
	pre(n)
	launch(n)
	post(n)
	return nil
}

func pre(n int) any { return n }
func launch(n int) any { return n }
func post(n int) any { return n }

func Workload() any {
	work(3)
	return "ok"
}`
	_, out := postJSON(t, ts.URL+"/api/v1/projects", map[string]any{
		"name":  "plainapp",
		"files": map[string]string{"app.go": target},
	})
	var id string
	_ = json.Unmarshal(out["id"], &id)

	req := CampaignRequest{
		Project: id,
		Entry:   "Workload",
		Env:     "plain",
		Specs: []faultmodel.Spec{
			{Name: "omit-launch", Type: "MFC", DSL: `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=launch}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`},
		},
	}
	resp, body := postJSON(t, ts.URL+"/api/v1/campaigns?wait=true", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d: %v", resp.StatusCode, body)
	}
	var rep struct {
		Total int `json:"total"`
	}
	_ = json.Unmarshal(body["report"], &rep)
	if rep.Total != 1 {
		t.Fatalf("report total = %d, want 1", rep.Total)
	}
}
