package sandbox

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// State is a container lifecycle state.
type State int

// Container lifecycle: Created -> Running -> Exited -> Destroyed.
const (
	StateCreated State = iota + 1
	StateRunning
	StateExited
	StateDestroyed
)

func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateExited:
		return "exited"
	case StateDestroyed:
		return "destroyed"
	default:
		return "unknown"
	}
}

// Image is a container template: the (mutated) target sources plus the
// resource profile used by the scheduler.
type Image struct {
	Name string
	// Files is the base layer loaded into each container's filesystem at
	// create time. The byte slices are shared, not copied — an experiment
	// batch deploys the same multi-megabyte target into every container,
	// so the image layers are treated as immutable while containers
	// exist (the FS copies on every write and read, so containers can
	// never alias them back out).
	Files map[string][]byte
	// Overlay is an optional copy-on-write layer applied over Files:
	// entries here shadow same-named base files. A campaign experiment
	// deploys the shared base plus a one-file overlay holding its
	// mutated source, instead of copying the whole file map per
	// experiment.
	Overlay map[string][]byte
	// MemMB and IOMBps are the per-container resource estimates feeding
	// the PAIN backpressure rule.
	MemMB  int
	IOMBps int
}

// Container is one isolated experiment environment.
type Container struct {
	ID    string
	Image string
	FS    *FS

	memMB  int
	ioMBps int
	seed   int64

	mu      sync.Mutex
	state   State
	logs    map[string]*bytes.Buffer
	covered map[string]bool
	env     map[string]any

	trigger    atomic.Bool
	contention atomic.Int32
}

// Seed returns the container's deterministic RNG seed.
func (c *Container) Seed() int64 { return c.seed }

// State returns the lifecycle state.
func (c *Container) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// SetTrigger flips the shared-memory fault trigger (EDFI-style): round 1
// runs with the fault enabled, round 2 with it disabled.
func (c *Container) SetTrigger(on bool) { c.trigger.Store(on) }

// TriggerEnabled reads the fault trigger.
func (c *Container) TriggerEnabled() bool { return c.trigger.Load() }

// AddContention raises the CPU contention level (resource hogs).
func (c *Container) AddContention(n int) { c.contention.Add(int32(n)) }

// Contention returns the current contention level.
func (c *Container) Contention() int { return int(c.contention.Load()) }

// ResetContention clears contention (e.g. at round boundaries, modelling
// the scheduler eventually reaping stale threads between rounds is NOT
// done — contention persists within the container, like stale threads).
func (c *Container) ResetContention() { c.contention.Store(0) }

// Log returns (creating if needed) a named log stream; component logs are
// the input of the failure logging / propagation analyses.
func (c *Container) Log(name string) *bytes.Buffer {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf, ok := c.logs[name]
	if !ok {
		buf = &bytes.Buffer{}
		c.logs[name] = buf
	}
	return buf
}

// LogNames returns the names of all log streams, sorted.
func (c *Container) LogNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.logs))
	for n := range c.logs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LogContents returns a copy of a log stream's contents.
func (c *Container) LogContents(name string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if buf, ok := c.logs[name]; ok {
		return buf.String()
	}
	return ""
}

// MarkCovered records execution of an instrumented injection point.
func (c *Container) MarkCovered(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.covered[id] = true
}

// Covered returns the covered injection-point IDs, sorted.
func (c *Container) Covered() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.covered))
	for id := range c.covered {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// PutEnv stores environment state that must persist across rounds within
// the container (e.g. the kvstore server instance).
func (c *Container) PutEnv(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.env[key] = v
}

// GetEnv retrieves environment state.
func (c *Container) GetEnv(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.env[key]
	return v, ok
}

// Start transitions the container to running.
func (c *Container) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateCreated && c.state != StateExited {
		return fmt.Errorf("sandbox: cannot start container in state %s", c.state)
	}
	c.state = StateRunning
	return nil
}

// Exit transitions the container to exited.
func (c *Container) Exit() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == StateRunning {
		c.state = StateExited
	}
}
