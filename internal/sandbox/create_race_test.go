package sandbox

import (
	"sync"
	"testing"
)

// TestConcurrentCreateUniqueSeeds locks in the fix for the seed
// duplication race: Create used to read nextID under one lock
// acquisition and increment it under another, so two concurrent calls
// could derive the same seed. Ids and seeds must both be unique now.
func TestConcurrentCreateUniqueSeeds(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 100})
	img := Image{Name: "race", Files: map[string][]byte{"f.go": []byte("x")}}

	const n = 64
	containers := make([]*Container, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			containers[i] = rt.Create(img)
		}(i)
	}
	wg.Wait()

	seeds := make(map[int64]string, n)
	ids := make(map[string]bool, n)
	for _, c := range containers {
		if prev, dup := seeds[c.Seed()]; dup {
			t.Fatalf("seed %d assigned to both %s and %s", c.Seed(), prev, c.ID)
		}
		seeds[c.Seed()] = c.ID
		if ids[c.ID] {
			t.Fatalf("duplicate container id %s", c.ID)
		}
		ids[c.ID] = true
	}
	st := rt.Stats()
	if st.Created != n || st.Active != n {
		t.Fatalf("stats = %+v, want %d created/active", st, n)
	}
}
