// Package sandbox implements the container-based experimental environment
// that substitutes for Docker in the original ProFIPy (§IV-B): images hold
// the (possibly mutated) target source plus configuration; containers give
// each experiment an isolated in-memory filesystem, log streams, a fault
// trigger in "shared memory", and resource accounting; the runtime
// schedules at most N−1 parallel containers on an N-core host, throttled
// further under memory/I-O pressure (the "no PAIN no gain" rule [52]).
package sandbox

import (
	"fmt"
	"sort"
	"sync"
)

// FS is a container-private in-memory filesystem.
type FS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewFS creates an empty filesystem.
func NewFS() *FS {
	return &FS{files: make(map[string][]byte)}
}

// Write stores a file (copying the contents).
func (f *FS) Write(path string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[path] = append([]byte(nil), data...)
}

// preload stores a file without copying, aliasing the caller's bytes.
// Only container creation uses it, to share immutable image layers across
// a whole experiment batch; the exported Write/Read copy in both
// directions, so the aliased bytes can never be mutated through the FS.
func (f *FS) preload(path string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[path] = data
}

// Read returns a file's contents.
func (f *FS) Read(path string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.files[path]
	if !ok {
		return nil, fmt.Errorf("fs: no such file: %s", path)
	}
	return append([]byte(nil), data...), nil
}

// Remove deletes a file; removing a missing file is an error (so leaked
// temp files are observable in tests).
func (f *FS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[path]; !ok {
		return fmt.Errorf("fs: no such file: %s", path)
	}
	delete(f.files, path)
	return nil
}

// List returns all paths in sorted order.
func (f *FS) List() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.files))
	for p := range f.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of files.
func (f *FS) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.files)
}

// Clear removes everything (container teardown).
func (f *FS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files = make(map[string][]byte)
}

// snapshot returns a deep copy of the file map (prefix-state capture).
func (f *FS) snapshot() map[string][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]byte, len(f.files))
	for p, d := range f.files {
		out[p] = append([]byte(nil), d...)
	}
	return out
}

// restore replaces the file map with a deep copy of the snapshot.
func (f *FS) restore(files map[string][]byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files = make(map[string][]byte, len(files))
	for p, d := range files {
		f.files[p] = append([]byte(nil), d...)
	}
}

// Clone returns a deep copy (image -> container copy-on-create).
func (f *FS) Clone() *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	nf := NewFS()
	for p, d := range f.files {
		nf.files[p] = append([]byte(nil), d...)
	}
	return nf
}
