package sandbox

import (
	"fmt"
	"math/rand"

	"profipy/internal/interp"
	"profipy/internal/mutator"
)

// HogVirtualNS is the virtual time one unit of CPU hog burns.
const HogVirtualNS = 30_000_000_000 // 30s of virtual CPU time per hog unit

// InstallHooks registers the fault-injection runtime hooks on an
// interpreter, binding them to a container. These are the functions the
// mutator's replacement templates call: the trigger, string corruption,
// CPU hogs, delays, exception construction, coverage and component logs.
func InstallHooks(it *interp.Interp, c *Container) {
	rng := rand.New(rand.NewSource(c.Seed()))

	it.RegisterHostFunc(mutator.HookTrigger, func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		return c.TriggerEnabled(), nil
	})

	it.RegisterHostFunc(mutator.HookCorrupt, func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("__corrupt takes one argument")
		}
		return Corrupt(rng, args[0]), nil
	})

	it.RegisterHostFunc(mutator.HookHog, func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		amount := int64(1)
		if len(args) >= 2 {
			if n, ok := args[1].(int64); ok && n > 0 {
				amount = n
			}
		}
		c.AddContention(int(amount))
		it.AdvanceClock(amount * HogVirtualNS)
		return nil, nil
	})

	it.RegisterHostFunc(mutator.HookDelay, func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		ms := int64(1000)
		if len(args) >= 1 {
			if n, ok := args[0].(int64); ok && n >= 0 {
				ms = n
			}
		}
		it.AdvanceClock(ms * 1_000_000)
		return nil, nil
	})

	it.RegisterHostFunc(mutator.HookExc, func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		excType, msg := "Error", "injected fault"
		if len(args) >= 1 {
			if s, ok := args[0].(string); ok {
				excType = s
			}
		}
		if len(args) >= 2 {
			if s, ok := args[1].(string); ok {
				msg = s
			}
		}
		return &interp.Exc{Type: excType, Msg: msg}, nil
	})

	it.RegisterHostFunc(mutator.HookCover, func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		if len(args) == 1 {
			if id, ok := args[0].(string); ok {
				c.MarkCovered(id)
			}
		}
		return nil, nil
	})

	it.RegisterHostFunc("__log", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
		if len(args) < 2 {
			return nil, fmt.Errorf("__log takes component and message")
		}
		comp, _ := args[0].(string)
		fmt.Fprintf(c.Log(comp), "%s\n", interp.Repr(args[1]))
		return nil, nil
	})
}

// Corrupt produces a deterministic corrupted variant of a value, the
// semantics of the $CORRUPT directive: strings get characters replaced
// with random contents (sometimes non-ASCII, which the kvstore rejects
// with 400 Bad Request); ints become random negatives; bools flip;
// nil stays nil.
func Corrupt(rng *rand.Rand, v interp.Value) interp.Value {
	switch x := v.(type) {
	case string:
		return corruptString(rng, x)
	case int64:
		return -(rng.Int63n(1 << 30)) - 1
	case float64:
		return -x - 1
	case bool:
		return !x
	case *interp.List:
		if len(x.Elems) == 0 {
			return x
		}
		out := interp.NewList(append([]interp.Value(nil), x.Elems...)...)
		i := rng.Intn(len(out.Elems))
		out.Elems[i] = Corrupt(rng, out.Elems[i])
		return out
	default:
		return nil
	}
}

func corruptString(rng *rand.Rand, s string) string {
	if s == "" {
		return string(rune(0x80 + rng.Intn(0x40)))
	}
	b := []byte(s)
	// Replace roughly half of the characters with random contents; with
	// probability 1/6 one of them is non-ASCII (which the kvstore
	// rejects as 400 Bad Request).
	for i := range b {
		if rng.Intn(2) == 0 {
			b[i] = byte('!' + rng.Intn(90))
		}
	}
	if rng.Intn(6) == 0 {
		b[rng.Intn(len(b))] = byte(0x80 + rng.Intn(0x7f))
	}
	return string(b)
}
