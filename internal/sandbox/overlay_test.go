package sandbox

import (
	"bytes"
	"testing"
)

// TestImageOverlayShadowsBase: overlay entries win over same-named base
// files, and base-only files remain visible.
func TestImageOverlayShadowsBase(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 2})
	img := Image{
		Name: "kv",
		Files: map[string][]byte{
			"client.go": []byte("base client"),
			"util.go":   []byte("base util"),
		},
		Overlay: map[string][]byte{"client.go": []byte("mutated client")},
	}
	c := rt.Create(img)
	defer func() { _ = rt.Destroy(c) }()
	if data, err := c.FS.Read("client.go"); err != nil || string(data) != "mutated client" {
		t.Fatalf("overlay did not shadow base: %q %v", data, err)
	}
	if data, err := c.FS.Read("util.go"); err != nil || string(data) != "base util" {
		t.Fatalf("base layer lost: %q %v", data, err)
	}
}

// TestImageLayersStayImmutable: the container filesystem shares image
// bytes without copying, so a container write must never leak back into
// the image layers, and FS reads must never hand out aliases of them.
func TestImageLayersStayImmutable(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 2})
	base := []byte("base bytes")
	over := []byte("overlay bytes")
	img := Image{
		Name:    "kv",
		Files:   map[string][]byte{"a.go": base},
		Overlay: map[string][]byte{"b.go": over},
	}
	c1 := rt.Create(img)
	defer func() { _ = rt.Destroy(c1) }()
	c2 := rt.Create(img)
	defer func() { _ = rt.Destroy(c2) }()

	// Writing through the container replaces its entry; the image maps
	// and the sibling container are untouched.
	c1.FS.Write("a.go", []byte("scribbled"))
	if !bytes.Equal(img.Files["a.go"], []byte("base bytes")) {
		t.Fatal("container write leaked into the image base layer")
	}
	if data, _ := c2.FS.Read("a.go"); string(data) != "base bytes" {
		t.Fatalf("sibling container sees %q, want the image bytes", data)
	}

	// Mutating the slice a read returned must not reach the image.
	data, err := c2.FS.Read("b.go")
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 'x'
	}
	if !bytes.Equal(img.Overlay["b.go"], []byte("overlay bytes")) {
		t.Fatal("read alias reached the image overlay")
	}
	if fresh, _ := c2.FS.Read("b.go"); string(fresh) != "overlay bytes" {
		t.Fatalf("container file corrupted through a read alias: %q", fresh)
	}
}
