package sandbox

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
)

// RuntimeConfig sizes the simulated host the containers run on.
type RuntimeConfig struct {
	// Cores is the number of CPU cores; the scheduler runs at most
	// Cores-1 parallel containers [52].
	Cores int
	// MemCapMB and IOCapMBps are host capacities; when the aggregate
	// demand of parallel containers would exceed a capacity, the
	// scheduler reduces parallelism further.
	MemCapMB  int
	IOCapMBps int
	// Seed drives deterministic per-container randomness (corruption,
	// stale reads); container i uses Seed+i.
	Seed int64
}

// Runtime creates and tracks containers and provides the parallel
// experiment scheduler.
type Runtime struct {
	cfg RuntimeConfig

	mu        sync.Mutex
	nextID    int
	active    map[string]*Container
	created   int
	destroyed int
	leaks     int
}

// NewRuntime creates a runtime for the given host configuration.
func NewRuntime(cfg RuntimeConfig) *Runtime {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	return &Runtime{cfg: cfg, active: make(map[string]*Container)}
}

// Create instantiates a container from an image, copying its files. The
// container seed derives from the creation counter; the id and the seed
// are allocated under a single critical section so concurrent Create
// calls can never derive the same seed.
func (r *Runtime) Create(img Image) *Container {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.createLocked(img, r.cfg.Seed+int64(r.nextID+1))
}

// CreateSeeded instantiates a container with an explicit RNG seed, so
// parallel experiment batches stay deterministic regardless of worker
// scheduling order.
func (r *Runtime) CreateSeeded(img Image, seed int64) *Container {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.createLocked(img, seed)
}

// createLocked allocates the container id and registers the container;
// callers must hold r.mu.
func (r *Runtime) createLocked(img Image, seed int64) *Container {
	r.nextID++
	r.created++
	c := &Container{
		ID:      img.Name + "-" + strconv.Itoa(r.nextID),
		Image:   img.Name,
		FS:      NewFS(),
		memMB:   img.MemMB,
		ioMBps:  img.IOMBps,
		seed:    seed,
		state:   StateCreated,
		logs:    make(map[string]*bytes.Buffer),
		covered: make(map[string]bool),
		env:     make(map[string]any),
	}
	for p, d := range img.Files {
		c.FS.preload(p, d)
	}
	for p, d := range img.Overlay {
		c.FS.preload(p, d)
	}
	r.active[c.ID] = c
	return c
}

// Destroy tears a container down, clearing its filesystem and counting
// any leaked resources (files left behind by the experiment) before
// reclaiming them — the paper's cleanup guarantee (§IV-B).
func (r *Runtime) Destroy(c *Container) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.active[c.ID]; !ok {
		return fmt.Errorf("sandbox: container %s is not active", c.ID)
	}
	c.mu.Lock()
	if c.state == StateDestroyed {
		c.mu.Unlock()
		return fmt.Errorf("sandbox: container %s already destroyed", c.ID)
	}
	c.state = StateDestroyed
	c.mu.Unlock()
	r.leaks += c.FS.Len()
	c.FS.Clear()
	delete(r.active, c.ID)
	r.destroyed++
	return nil
}

// Stats reports runtime counters.
type Stats struct {
	Created        int `json:"created"`
	Destroyed      int `json:"destroyed"`
	Active         int `json:"active"`
	LeakedReclaims int `json:"leakedReclaims"`
}

// Stats returns a snapshot of runtime counters.
func (r *Runtime) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{Created: r.created, Destroyed: r.destroyed, Active: len(r.active), LeakedReclaims: r.leaks}
}

// MaxParallel computes the number of parallel containers allowed for an
// image: N−1 cores, further reduced when the aggregate memory or I/O
// demand would exceed host capacity.
func (r *Runtime) MaxParallel(img Image) int {
	workers := r.cfg.Cores - 1
	if workers < 1 {
		workers = 1
	}
	if img.MemMB > 0 && r.cfg.MemCapMB > 0 {
		if byMem := r.cfg.MemCapMB / img.MemMB; byMem < workers {
			workers = byMem
		}
	}
	if img.IOMBps > 0 && r.cfg.IOCapMBps > 0 {
		if byIO := r.cfg.IOCapMBps / img.IOMBps; byIO < workers {
			workers = byIO
		}
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunBatch executes one job per index in [0, n) with at most MaxParallel
// workers for the image, collecting results in order. The job function
// receives the index; it is responsible for creating and destroying its
// own container.
func RunBatch[T any](r *Runtime, img Image, n int, job func(i int) T) []T {
	workers := r.MaxParallel(img)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	results := make([]T, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}
