package sandbox

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"profipy/internal/interp"
)

func TestFSBasics(t *testing.T) {
	fs := NewFS()
	fs.Write("a.go", []byte("hello"))
	data, err := fs.Read("a.go")
	if err != nil || string(data) != "hello" {
		t.Fatalf("Read = %q, %v", data, err)
	}
	if _, err := fs.Read("missing"); err == nil {
		t.Fatal("Read of missing file should fail")
	}
	if err := fs.Remove("a.go"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := fs.Remove("a.go"); err == nil {
		t.Fatal("double Remove should fail")
	}
}

func TestFSCloneIsDeep(t *testing.T) {
	fs := NewFS()
	fs.Write("f", []byte("one"))
	clone := fs.Clone()
	fs.Write("f", []byte("two"))
	data, _ := clone.Read("f")
	if string(data) != "one" {
		t.Fatalf("clone sees %q, want one", data)
	}
}

func TestContainerLifecycle(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 4})
	img := Image{Name: "kv", Files: map[string][]byte{"client.go": []byte("package x")}}
	c := rt.Create(img)
	if c.State() != StateCreated {
		t.Fatalf("state = %v", c.State())
	}
	if data, err := c.FS.Read("client.go"); err != nil || string(data) != "package x" {
		t.Fatalf("image files not copied: %q %v", data, err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("double Start should fail")
	}
	c.Exit()
	if c.State() != StateExited {
		t.Fatalf("state = %v", c.State())
	}
	if err := rt.Destroy(c); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	if err := rt.Destroy(c); err == nil {
		t.Fatal("double Destroy should fail")
	}
	st := rt.Stats()
	if st.Created != 1 || st.Destroyed != 1 || st.Active != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDestroyReclaimsLeaks(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 2})
	c := rt.Create(Image{Name: "kv"})
	c.FS.Write("/tmp/stale.lock", []byte("leak"))
	if err := rt.Destroy(c); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().LeakedReclaims != 1 {
		t.Fatalf("leaks = %d, want 1", rt.Stats().LeakedReclaims)
	}
	if c.FS.Len() != 0 {
		t.Fatal("filesystem not cleared on destroy")
	}
}

func TestMaxParallelFollowsPAINRule(t *testing.T) {
	// N−1 cores by default.
	rt := NewRuntime(RuntimeConfig{Cores: 8})
	if got := rt.MaxParallel(Image{}); got != 7 {
		t.Fatalf("MaxParallel = %d, want 7", got)
	}
	// Memory pressure reduces parallelism below N−1.
	rt = NewRuntime(RuntimeConfig{Cores: 8, MemCapMB: 1600})
	if got := rt.MaxParallel(Image{MemMB: 512}); got != 3 {
		t.Fatalf("MaxParallel under mem pressure = %d, want 3", got)
	}
	// I/O pressure too.
	rt = NewRuntime(RuntimeConfig{Cores: 8, IOCapMBps: 100})
	if got := rt.MaxParallel(Image{IOMBps: 60}); got != 1 {
		t.Fatalf("MaxParallel under io pressure = %d, want 1", got)
	}
	// Never below 1.
	rt = NewRuntime(RuntimeConfig{Cores: 1})
	if got := rt.MaxParallel(Image{}); got != 1 {
		t.Fatalf("MaxParallel = %d, want 1", got)
	}
}

func TestRunBatchBoundsParallelism(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 3}) // 2 workers
	var cur, peak atomic.Int32
	results := RunBatch(rt, Image{}, 16, func(i int) int {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		for j := 0; j < 1000; j++ {
			_ = j * j
		}
		cur.Add(-1)
		return i * 2
	})
	if len(results) != 16 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r != i*2 {
			t.Fatalf("results[%d] = %d (order not preserved)", i, r)
		}
	}
	if peak.Load() > 2 {
		t.Fatalf("peak parallelism = %d, want <= 2", peak.Load())
	}
}

func TestTriggerSharedMemory(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 2})
	c := rt.Create(Image{Name: "kv"})
	it := interp.New(interp.Config{})
	InstallHooks(it, c)
	src := `package main
func F() any {
	if __fault_enabled() {
		return "faulty"
	}
	return "clean"
}`
	if err := it.LoadSource("t.go", []byte(src)); err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	c.SetTrigger(true)
	if got, _ := it.Call("F"); got != "faulty" {
		t.Fatalf("round 1 = %v, want faulty", got)
	}
	c.SetTrigger(false)
	if got, _ := it.Call("F"); got != "clean" {
		t.Fatalf("round 2 = %v, want clean", got)
	}
}

func TestHogAdvancesClockAndContention(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 2})
	c := rt.Create(Image{Name: "kv"})
	it := interp.New(interp.Config{})
	InstallHooks(it, c)
	src := `package main
func F() any {
	__hog("cpu", 2)
	return nil
}`
	if err := it.LoadSource("t.go", []byte(src)); err != nil {
		t.Fatal(err)
	}
	before := it.Clock()
	if _, err := it.Call("F"); err != nil {
		t.Fatal(err)
	}
	if it.Clock()-before < 2*HogVirtualNS {
		t.Fatalf("clock advanced %d, want >= %d", it.Clock()-before, 2*HogVirtualNS)
	}
	if c.Contention() != 2 {
		t.Fatalf("contention = %d, want 2", c.Contention())
	}
}

func TestCoverageHook(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 2})
	c := rt.Create(Image{Name: "kv"})
	it := interp.New(interp.Config{})
	InstallHooks(it, c)
	src := `package main
func F(b bool) any {
	__cover("pt1")
	if b {
		__cover("pt2")
	}
	return nil
}`
	if err := it.LoadSource("t.go", []byte(src)); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Call("F", false); err != nil {
		t.Fatal(err)
	}
	cov := c.Covered()
	if len(cov) != 1 || cov[0] != "pt1" {
		t.Fatalf("covered = %v, want [pt1]", cov)
	}
}

func TestComponentLogs(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 2})
	c := rt.Create(Image{Name: "kv"})
	it := interp.New(interp.Config{})
	InstallHooks(it, c)
	src := `package main
func F() any {
	__log("client", "ERROR something broke")
	return nil
}`
	if err := it.LoadSource("t.go", []byte(src)); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Call("F"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.LogContents("client"), "ERROR something broke") {
		t.Fatalf("client log = %q", c.LogContents("client"))
	}
}

func TestCorruptDeterministicAndTyped(t *testing.T) {
	a := Corrupt(rand.New(rand.NewSource(7)), "hello-world")
	b := Corrupt(rand.New(rand.NewSource(7)), "hello-world")
	if a != b {
		t.Fatalf("corruption not deterministic: %q vs %q", a, b)
	}
	if s, ok := a.(string); !ok || s == "hello-world" {
		t.Fatalf("corrupt string = %v, want changed string", a)
	}
	if n, ok := Corrupt(rand.New(rand.NewSource(1)), int64(5)).(int64); !ok || n >= 0 {
		t.Fatalf("corrupt int = %v, want negative", n)
	}
	if v := Corrupt(rand.New(rand.NewSource(1)), nil); v != nil {
		t.Fatalf("corrupt nil = %v, want nil", v)
	}
	if v, ok := Corrupt(rand.New(rand.NewSource(1)), true).(bool); !ok || v {
		t.Fatalf("corrupt bool = %v, want false", v)
	}
}

func TestCorruptStringProperties(t *testing.T) {
	// Property: corruption of a non-empty string never yields an empty
	// string and is deterministic for a fixed seed.
	prop := func(seed int64, s string) bool {
		if s == "" {
			return true
		}
		a := corruptString(rand.New(rand.NewSource(seed)), s)
		b := corruptString(rand.New(rand.NewSource(seed)), s)
		return a == b && len(a) > 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestContainerSeedsDiffer(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 2, Seed: 100})
	c1 := rt.Create(Image{Name: "kv"})
	c2 := rt.Create(Image{Name: "kv"})
	if c1.Seed() == c2.Seed() {
		t.Fatal("containers must have distinct seeds")
	}
	if c1.ID == c2.ID {
		t.Fatal("containers must have distinct IDs")
	}
}
