package sandbox

import (
	"bytes"
	"sort"
)

// ContainerState is a frozen copy of a container's mutable experiment
// state — filesystem, log streams, coverage marks and contention level —
// taken at a prefix-snapshot boundary. It is immutable after capture and
// may be restored into any number of forked containers. The environment
// bag (PutEnv) is deliberately excluded: its values are live host
// objects owned by the workload environment, which captures and restores
// them itself.
type ContainerState struct {
	fs         map[string][]byte
	logs       map[string][]byte
	covered    []string
	contention int32
}

// File returns the captured filesystem content at path.
func (st *ContainerState) File(path string) ([]byte, bool) {
	data, ok := st.fs[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// CaptureState deep-copies the container's mutable state.
func (c *Container) CaptureState() *ContainerState {
	st := &ContainerState{
		fs:         c.FS.snapshot(),
		logs:       make(map[string][]byte),
		covered:    c.Covered(),
		contention: c.contention.Load(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, buf := range c.logs {
		st.logs[name] = append([]byte(nil), buf.Bytes()...)
	}
	return st
}

// RestoreState replaces the container's filesystem, log streams,
// coverage marks and contention level with the captured state. Log
// buffers handed out by Log before the restore keep pointing at the
// old streams; grab streams after restoring. The environment bag and
// the fault trigger are left untouched.
func (c *Container) RestoreState(st *ContainerState) {
	c.FS.restore(st.fs)
	c.mu.Lock()
	c.logs = make(map[string]*bytes.Buffer, len(st.logs))
	for name, data := range st.logs {
		c.logs[name] = bytes.NewBuffer(append([]byte(nil), data...))
	}
	c.covered = make(map[string]bool, len(st.covered))
	for _, id := range st.covered {
		c.covered[id] = true
	}
	c.mu.Unlock()
	c.contention.Store(st.contention)
}

// EnvKeys returns the keys present in the environment bag, sorted. The
// prefix driver uses it to refuse snapshotting when the environment
// holds state nobody knows how to capture.
func (c *Container) EnvKeys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.env))
	for k := range c.env {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
