package scanner_test

import (
	"fmt"
	"testing"

	"profipy/internal/faultmodel"
	"profipy/internal/genproject"
	"profipy/internal/scanner"
)

// BenchmarkScanProjectParallel measures full-project scan throughput on
// the §V-D synthetic corpus (40K lines, 120 DSL patterns) as the worker
// pool grows. workers=1 is the serial engine (the committed baseline ran
// ~13.3K lines/s on this corpus before the pre-filter index); larger
// worker counts add multi-core scaling on top. Run with:
//
//	go test -bench ScanProjectParallel -benchmem ./internal/scanner/
func BenchmarkScanProjectParallel(b *testing.B) {
	files := genproject.Generate(genproject.DefaultConfig(40_000, 1))
	total := genproject.Lines(files)
	models, err := faultmodel.CompileAll(genproject.Patterns(120))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			points := 0
			for i := 0; i < b.N; i++ {
				pts, err := scanner.ScanProjectParallel(files, models, workers)
				if err != nil {
					b.Fatal(err)
				}
				points = len(pts)
			}
			b.ReportMetric(float64(points), "points")
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
		})
	}
}

// BenchmarkScanCacheWarm isolates the match engine from the parse front
// end: the project is parsed once outside the loop, so each iteration
// measures pure pattern matching over cached parses — the steady state of
// a campaign re-scanning with additional specs.
func BenchmarkScanCacheWarm(b *testing.B) {
	files := genproject.Generate(genproject.DefaultConfig(40_000, 1))
	total := genproject.Lines(files)
	models, err := faultmodel.CompileAll(genproject.Patterns(120))
	if err != nil {
		b.Fatal(err)
	}
	cache := scanner.NewProjectCache(files)
	if _, err := scanner.ScanCache(cache, models, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scanner.ScanCache(cache, models, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}
