package scanner

import (
	"go/ast"
	"go/token"
	"sort"
	"sync"
)

// ParsedFile is one target source file parsed once and shared by every
// consumer of the scan→plan→mutate pipeline: the scanner matches against
// it, the coverage phase derives instrumentation offsets from it, and the
// mutator re-establishes matches on it for each experiment.
//
// A ParsedFile is READ-ONLY after construction: the AST, the statement
// lists and the source bytes are shared across goroutines (parallel scan
// workers, parallel experiments), so no consumer may mutate them. The
// mutator honours this by splicing rendered text into a copy of Src
// instead of rewriting the AST.
type ParsedFile struct {
	Name  string
	Src   []byte
	Fset  *token.FileSet
	File  *ast.File
	Lists []StmtList
}

// ParseFileOnce parses a source file and pre-collects its statement lists.
func ParseFileOnce(name string, src []byte) (*ParsedFile, error) {
	fset := token.NewFileSet()
	f, err := ParseSource(fset, name, src)
	if err != nil {
		return nil, err
	}
	return &ParsedFile{Name: name, Src: src, Fset: fset, File: f, Lists: CollectLists(f)}, nil
}

// Offset translates a token position into a byte offset within Src.
func (pf *ParsedFile) Offset(pos token.Pos) int {
	return pf.Fset.Position(pos).Offset
}

// ProjectCache is a per-campaign parse cache: filename -> lazily parsed
// ParsedFile. Each file is parsed exactly once no matter how many specs
// scan it, how many experiments mutate it, or how many goroutines ask for
// it concurrently.
type ProjectCache struct {
	files map[string][]byte
	names []string

	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	pf   *ParsedFile
	err  error
}

// NewProjectCache creates a cache over a project file set. The map is
// captured by reference; callers must not mutate it while the cache is in
// use.
func NewProjectCache(files map[string][]byte) *ProjectCache {
	return &ProjectCache{
		files:   files,
		names:   SortedNames(files),
		entries: make(map[string]*cacheEntry, len(files)),
	}
}

// Names returns the project's file names in sorted order.
func (c *ProjectCache) Names() []string { return c.names }

// Get returns the parsed form of a file, parsing it on first use. It is
// safe for concurrent use; concurrent callers of the same file share one
// parse.
func (c *ProjectCache) Get(name string) (*ParsedFile, error) {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		e = &cacheEntry{}
		c.entries[name] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		src, ok := c.files[name]
		if !ok {
			e.err = errNoSuchFile(name)
			return
		}
		e.pf, e.err = ParseFileOnce(name, src)
	})
	return e.pf, e.err
}

// SortedNames returns the keys of a file map in sorted order; every layer
// that needs deterministic file ordering (scan, plan, coverage) shares it.
func SortedNames(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
