package scanner

import (
	"encoding/json"
	"strings"
	"testing"
	"unicode/utf8"

	"profipy/internal/pattern"
)

// corpus builds a deterministic multi-file project exercising several
// statement kinds, large enough that parallel workers interleave.
func corpus(t *testing.T) (map[string][]byte, []*pattern.MetaModel) {
	t.Helper()
	files := make(map[string][]byte, 12)
	for i := 0; i < 12; i++ {
		var sb strings.Builder
		sb.WriteString("package p\n\n")
		for f := 0; f < 8; f++ {
			sb.WriteString("func fn")
			sb.WriteByte(byte('a' + i))
			sb.WriteByte(byte('0' + f))
			sb.WriteString(`(node string) {
	prepare(node)
	DeletePort(node)
	if node != "" {
		audit(node)
		continueWork(node)
	}
	utils.Execute("run", "-x-flag", node)
	finish(node)
}
`)
		}
		name := "dir/" + string(rune('a'+i)) + ".go"
		files[name] = []byte(sb.String())
	}
	specs := []*pattern.MetaModel{
		compile(t, "MFC", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`),
		compile(t, "WPF", `
change {
	$CALL#c{name=utils.Execute}(..., $STRING#s{val=*-*}, ...)
} into {
	$CALL#c(..., $CORRUPT($STRING#s), ...)
}`),
		compile(t, "MIFS", `
change {
	if $EXPR{var=node} {
		audit(node)
		$BLOCK{stmts=1,2}
	}
} into {
}`),
	}
	return files, specs
}

// TestScanParallelDeterminism: the same project scanned with 1 and N
// workers yields byte-identical injection point lists. Run under -race in
// CI, this also proves the shared parse cache and meta-models are
// race-free across scan workers.
func TestScanParallelDeterminism(t *testing.T) {
	files, specs := corpus(t)
	serial, err := ScanProjectParallel(files, specs, 1)
	if err != nil {
		t.Fatalf("serial scan: %v", err)
	}
	if len(serial) == 0 {
		t.Fatal("corpus produced no injection points")
	}
	want, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 32} {
		got, err := ScanProjectParallel(files, specs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(want) {
			t.Errorf("workers=%d: point list differs from serial scan", workers)
		}
	}
}

// TestScanParallelDeterministicError: with several unparseable files, the
// reported error is that of the first bad file in sorted-name order,
// regardless of worker count.
func TestScanParallelDeterministicError(t *testing.T) {
	files := map[string][]byte{
		"z.go": []byte("not go at all"),
		"m.go": []byte("also broken {"),
		"a.go": []byte("package p\nfunc A() { x() }\n"),
	}
	for _, workers := range []int{1, 4} {
		_, err := ScanProjectParallel(files, nil, workers)
		if err == nil {
			t.Fatalf("workers=%d: scan of broken project should fail", workers)
		}
		if !strings.Contains(err.Error(), "m.go") {
			t.Errorf("workers=%d: error = %v, want the first broken file (m.go)", workers, err)
		}
	}
}

func TestScanCacheReusesParses(t *testing.T) {
	files, specs := corpus(t)
	cache := NewProjectCache(files)
	if _, err := ScanCache(cache, specs, 4); err != nil {
		t.Fatal(err)
	}
	pf1, err := cache.Get("dir/a.go")
	if err != nil {
		t.Fatal(err)
	}
	pf2, err := cache.Get("dir/a.go")
	if err != nil {
		t.Fatal(err)
	}
	if pf1 != pf2 {
		t.Error("cache.Get must return the same parse on every call")
	}
	if _, err := cache.Get("dir/missing.go"); err == nil {
		t.Error("cache.Get of a missing file must fail")
	}
}

func TestTruncateSnippetRuneSafe(t *testing.T) {
	// 2-byte runes positioned so a naive 120-byte cut lands mid-rune.
	long := strings.Repeat("é", 100) // 200 bytes
	got := truncateSnippet(long, 121)
	if !utf8.ValidString(got) {
		t.Fatalf("truncated snippet is not valid UTF-8: %q", got)
	}
	if !strings.HasSuffix(got, "...") {
		t.Fatalf("truncated snippet missing ellipsis: %q", got)
	}
	if want := strings.Repeat("é", 60) + "..."; got != want {
		t.Fatalf("cut at %d bytes = %q, want backed up to rune boundary", 121, got)
	}
	if s := truncateSnippet("short", 120); s != "short" {
		t.Fatalf("short snippet must pass through, got %q", s)
	}
}

// TestScanSnippetUTF8 exercises the truncation through a real scan: a call
// statement whose rendering exceeds the snippet bound in the middle of a
// multi-byte rune must still yield valid UTF-8.
func TestScanSnippetUTF8(t *testing.T) {
	src := "package p\n\nfunc F() {\n\tDeleteAll(\"" + strings.Repeat("日", 80) + "\")\n}\n"
	mm := compile(t, "calls", `
change {
	$CALL{name=Delete*}(...)
} into {
}`)
	pts, err := ScanSource("u.go", []byte(src), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %d, want 1", len(pts))
	}
	if !utf8.ValidString(pts[0].Snippet) {
		t.Fatalf("snippet is not valid UTF-8: %q", pts[0].Snippet)
	}
	if !strings.HasSuffix(pts[0].Snippet, "...") {
		t.Fatalf("long snippet should be truncated: %q", pts[0].Snippet)
	}
}

func TestSortedNames(t *testing.T) {
	names := SortedNames(map[string][]byte{"c": nil, "a": nil, "b": nil})
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("SortedNames = %v", names)
	}
}
