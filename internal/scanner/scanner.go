// Package scanner implements ProFIPy's source-code scanner: it walks the
// AST of the software-under-injection and finds every match of a compiled
// bug specification (meta-model), producing the list of fault injection
// points from which the fault injection plan is built.
package scanner

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"runtime"
	"sync"
	"unicode/utf8"

	"profipy/internal/pattern"
)

// InjectionPoint identifies one location where a bug specification can be
// injected: a statement window within a statement list of a file.
type InjectionPoint struct {
	Spec      string `json:"spec"`
	File      string `json:"file"`
	Func      string `json:"func"`
	ListIndex int    `json:"listIndex"`
	Start     int    `json:"start"`
	N         int    `json:"n"`
	Line      int    `json:"line"`
	Snippet   string `json:"snippet"`
}

// ID returns a stable identifier for the point, unique within a project.
func (p InjectionPoint) ID() string {
	return fmt.Sprintf("%s/%s#%d@%d+%d:%s", p.File, p.Func, p.ListIndex, p.Start, p.N, p.Spec)
}

// StmtList is an addressable statement list inside a parsed file, in
// deterministic DFS order. The same source always yields the same list
// ordering, so ListIndex survives a re-parse.
type StmtList struct {
	Ptr  *[]ast.Stmt
	Func string
}

// CollectLists returns every statement list in the file in deterministic
// order: function bodies first (in declaration order), then nested lists
// (if/else/for/range/switch-case bodies) depth-first.
func CollectLists(f *ast.File) []StmtList {
	var lists []StmtList
	var walkStmts func(fn string, ptr *[]ast.Stmt)
	var walkStmt func(fn string, s ast.Stmt)

	walkStmts = func(fn string, ptr *[]ast.Stmt) {
		lists = append(lists, StmtList{Ptr: ptr, Func: fn})
		for _, s := range *ptr {
			walkStmt(fn, s)
			// Function-literal bodies hang off expressions (deferred
			// closures, callbacks); their statement lists are injection
			// targets too.
			for _, fl := range funcLitsInStmtExprs(s) {
				walkStmts(fn, &fl.Body.List)
			}
		}
	}
	walkStmt = func(fn string, s ast.Stmt) {
		switch st := s.(type) {
		case *ast.BlockStmt:
			walkStmts(fn, &st.List)
		case *ast.IfStmt:
			walkStmts(fn, &st.Body.List)
			if st.Else != nil {
				walkStmt(fn, st.Else)
			}
		case *ast.ForStmt:
			walkStmts(fn, &st.Body.List)
		case *ast.RangeStmt:
			walkStmts(fn, &st.Body.List)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(fn, &cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(fn, &cc.Body)
				}
			}
		case *ast.LabeledStmt:
			walkStmt(fn, st.Stmt)
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkStmts(fn, &cc.Body)
				}
			}
		}
	}

	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		walkStmts(funcDisplayName(fd), &fd.Body.List)
	}
	return lists
}

// funcLitsInStmtExprs finds function literals directly contained in a
// statement's expressions, without descending into nested statement blocks
// (those are visited separately, so stopping at BlockStmt avoids
// double-counting).
func funcLitsInStmtExprs(s ast.Stmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(s, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.BlockStmt:
			return false
		case *ast.FuncLit:
			out = append(out, nn)
			return false
		}
		return true
	})
	return out
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if se, ok := recv.(*ast.StarExpr); ok {
		recv = se.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// ParseSource parses one target source file.
func ParseSource(fset *token.FileSet, filename string, src []byte) (*ast.File, error) {
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", filename, err)
	}
	return f, nil
}

// snippetMax bounds injection-point snippet length (bytes, before the
// ellipsis).
const snippetMax = 120

// truncateSnippet cuts a snippet to at most max bytes without splitting a
// UTF-8 rune mid-sequence: the cut backs up to the nearest rune boundary.
func truncateSnippet(s string, max int) string {
	if len(s) <= max {
		return s
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "..."
}

// ScanFile finds all matches of the given meta-models in a parsed file.
// Matches are enumerated deterministically: per spec, per statement list
// (DFS order), per start index.
func ScanFile(fset *token.FileSet, filename string, f *ast.File, specs []*pattern.MetaModel) []InjectionPoint {
	return scanLists(fset, filename, CollectLists(f), specs)
}

// ScanParsed scans a cached parse, reusing its pre-collected statement
// lists across every spec.
func ScanParsed(pf *ParsedFile, specs []*pattern.MetaModel) []InjectionPoint {
	return scanLists(pf.Fset, pf.Name, pf.Lists, specs)
}

func scanLists(fset *token.FileSet, filename string, lists []StmtList, specs []*pattern.MetaModel) []InjectionPoint {
	var points []InjectionPoint
	for _, mm := range specs {
		for li, sl := range lists {
			stmts := *sl.Ptr
			for start := 0; start < len(stmts); start++ {
				n, _, ok := mm.MatchPrefix(stmts, start)
				if !ok {
					continue
				}
				pos := fset.Position(stmts[start].Pos())
				points = append(points, InjectionPoint{
					Spec:      mm.Name,
					File:      filename,
					Func:      sl.Func,
					ListIndex: li,
					Start:     start,
					N:         n,
					Line:      pos.Line,
					Snippet:   truncateSnippet(pattern.StmtString(fset, stmts[start]), snippetMax),
				})
			}
		}
	}
	return points
}

// ScanSource parses and scans one source file in a single call.
func ScanSource(filename string, src []byte, specs []*pattern.MetaModel) ([]InjectionPoint, error) {
	fset := token.NewFileSet()
	f, err := ParseSource(fset, filename, src)
	if err != nil {
		return nil, err
	}
	return ScanFile(fset, filename, f, specs), nil
}

// ScanProject scans a set of named source files (filename -> contents)
// with a set of specs, using one worker per available CPU. The output is
// deterministic: points appear in sorted-file-name order regardless of
// worker count or scheduling.
func ScanProject(files map[string][]byte, specs []*pattern.MetaModel) ([]InjectionPoint, error) {
	return ScanCache(NewProjectCache(files), specs, 0)
}

// ScanProjectParallel scans with an explicit worker count (0 = one per
// available CPU).
func ScanProjectParallel(files map[string][]byte, specs []*pattern.MetaModel, workers int) ([]InjectionPoint, error) {
	return ScanCache(NewProjectCache(files), specs, workers)
}

// ScanCache scans every file of a project cache with a worker pool,
// leaving the parses behind for the coverage and mutation phases. Results
// are concatenated in sorted-file-name order; when several files fail to
// parse, the error of the first failing file (in that same order) is
// returned, so error reporting is deterministic too.
func ScanCache(cache *ProjectCache, specs []*pattern.MetaModel, workers int) ([]InjectionPoint, error) {
	names := cache.Names()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	if workers < 1 {
		workers = 1
	}

	perFile := make([][]InjectionPoint, len(names))
	errs := make([]error, len(names))
	if workers == 1 {
		for i, name := range names {
			perFile[i], errs[i] = scanCached(cache, name, specs)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					perFile[i], errs[i] = scanCached(cache, names[i], specs)
				}
			}()
		}
		for i := range names {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	total := 0
	for i := range names {
		if errs[i] != nil {
			return nil, errs[i]
		}
		total += len(perFile[i])
	}
	all := make([]InjectionPoint, 0, total)
	for _, pts := range perFile {
		all = append(all, pts...)
	}
	return all, nil
}

func scanCached(cache *ProjectCache, name string, specs []*pattern.MetaModel) ([]InjectionPoint, error) {
	pf, err := cache.Get(name)
	if err != nil {
		return nil, err
	}
	return ScanParsed(pf, specs), nil
}

func errNoSuchFile(name string) error {
	return fmt.Errorf("scanner: no such file in project: %s", name)
}
