// Package scanner implements ProFIPy's source-code scanner: it walks the
// AST of the software-under-injection and finds every match of a compiled
// bug specification (meta-model), producing the list of fault injection
// points from which the fault injection plan is built.
package scanner

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"

	"profipy/internal/pattern"
)

// InjectionPoint identifies one location where a bug specification can be
// injected: a statement window within a statement list of a file.
type InjectionPoint struct {
	Spec      string `json:"spec"`
	File      string `json:"file"`
	Func      string `json:"func"`
	ListIndex int    `json:"listIndex"`
	Start     int    `json:"start"`
	N         int    `json:"n"`
	Line      int    `json:"line"`
	Snippet   string `json:"snippet"`
}

// ID returns a stable identifier for the point, unique within a project.
func (p InjectionPoint) ID() string {
	return fmt.Sprintf("%s/%s#%d@%d+%d:%s", p.File, p.Func, p.ListIndex, p.Start, p.N, p.Spec)
}

// StmtList is an addressable statement list inside a parsed file, in
// deterministic DFS order. The same source always yields the same list
// ordering, so ListIndex survives a re-parse.
type StmtList struct {
	Ptr  *[]ast.Stmt
	Func string
}

// CollectLists returns every statement list in the file in deterministic
// order: function bodies first (in declaration order), then nested lists
// (if/else/for/range/switch-case bodies) depth-first.
func CollectLists(f *ast.File) []StmtList {
	var lists []StmtList
	var walkStmts func(fn string, ptr *[]ast.Stmt)
	var walkStmt func(fn string, s ast.Stmt)

	walkStmts = func(fn string, ptr *[]ast.Stmt) {
		lists = append(lists, StmtList{Ptr: ptr, Func: fn})
		for _, s := range *ptr {
			walkStmt(fn, s)
			// Function-literal bodies hang off expressions (deferred
			// closures, callbacks); their statement lists are injection
			// targets too.
			for _, fl := range funcLitsInStmtExprs(s) {
				walkStmts(fn, &fl.Body.List)
			}
		}
	}
	walkStmt = func(fn string, s ast.Stmt) {
		switch st := s.(type) {
		case *ast.BlockStmt:
			walkStmts(fn, &st.List)
		case *ast.IfStmt:
			walkStmts(fn, &st.Body.List)
			if st.Else != nil {
				walkStmt(fn, st.Else)
			}
		case *ast.ForStmt:
			walkStmts(fn, &st.Body.List)
		case *ast.RangeStmt:
			walkStmts(fn, &st.Body.List)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(fn, &cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(fn, &cc.Body)
				}
			}
		case *ast.LabeledStmt:
			walkStmt(fn, st.Stmt)
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkStmts(fn, &cc.Body)
				}
			}
		}
	}

	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		walkStmts(funcDisplayName(fd), &fd.Body.List)
	}
	return lists
}

// funcLitsInStmtExprs finds function literals directly contained in a
// statement's expressions, without descending into nested statement blocks
// (those are visited separately, so stopping at BlockStmt avoids
// double-counting).
func funcLitsInStmtExprs(s ast.Stmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(s, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.BlockStmt:
			return false
		case *ast.FuncLit:
			out = append(out, nn)
			return false
		}
		return true
	})
	return out
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if se, ok := recv.(*ast.StarExpr); ok {
		recv = se.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// ParseSource parses one target source file.
func ParseSource(fset *token.FileSet, filename string, src []byte) (*ast.File, error) {
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", filename, err)
	}
	return f, nil
}

// ScanFile finds all matches of the given meta-models in a parsed file.
// Matches are enumerated deterministically: per spec, per statement list
// (DFS order), per start index.
func ScanFile(fset *token.FileSet, filename string, f *ast.File, specs []*pattern.MetaModel) []InjectionPoint {
	lists := CollectLists(f)
	var points []InjectionPoint
	for _, mm := range specs {
		for li, sl := range lists {
			stmts := *sl.Ptr
			for start := 0; start < len(stmts); start++ {
				n, _, ok := mm.MatchPrefix(stmts, start)
				if !ok {
					continue
				}
				pos := fset.Position(stmts[start].Pos())
				snippet := pattern.StmtString(fset, stmts[start])
				if len(snippet) > 120 {
					snippet = snippet[:120] + "..."
				}
				points = append(points, InjectionPoint{
					Spec:      mm.Name,
					File:      filename,
					Func:      sl.Func,
					ListIndex: li,
					Start:     start,
					N:         n,
					Line:      pos.Line,
					Snippet:   snippet,
				})
			}
		}
	}
	return points
}

// ScanSource parses and scans one source file in a single call.
func ScanSource(filename string, src []byte, specs []*pattern.MetaModel) ([]InjectionPoint, error) {
	fset := token.NewFileSet()
	f, err := ParseSource(fset, filename, src)
	if err != nil {
		return nil, err
	}
	return ScanFile(fset, filename, f, specs), nil
}

// ScanProject scans a set of named source files (filename -> contents)
// with a set of specs. Files are processed in sorted-name order so the
// resulting plan is deterministic.
func ScanProject(files map[string][]byte, specs []*pattern.MetaModel) ([]InjectionPoint, error) {
	names := sortedKeys(files)
	var all []InjectionPoint
	for _, name := range names {
		pts, err := ScanSource(name, files[name], specs)
		if err != nil {
			return nil, err
		}
		all = append(all, pts...)
	}
	return all, nil
}

func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
