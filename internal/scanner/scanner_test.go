package scanner

import (
	"strings"
	"testing"

	"profipy/internal/dsl"
	"profipy/internal/pattern"
)

// A miniature target program exercising the Fig. 1 fault types.
const target = `package client

func Cleanup(c *Conn, node string) {
	prepare(c)
	DeletePort(c, node)
	finish(c)
}

func Sweep(nodes []string) {
	for _, node := range nodes {
		if node == "" {
			logSkip(node)
			continue
		}
		process(node)
	}
}

func Provision(c *Conn) {
	setup(c)
	utils.Execute("iptables", "-A INPUT", "allow")
	utils.Execute("plain", "noflag")
	teardown(c)
}
`

func compile(t *testing.T, name, src string) *pattern.MetaModel {
	t.Helper()
	mm, err := dsl.Compile(name, src)
	if err != nil {
		t.Fatalf("Compile(%s): %v", name, err)
	}
	return mm
}

func TestScanMFC(t *testing.T) {
	mm := compile(t, "MFC", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`)
	pts, err := ScanSource("client.go", []byte(target), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatalf("ScanSource: %v", err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %d, want 1 (the DeletePort call with neighbours)", len(pts))
	}
	p := pts[0]
	if p.Func != "Cleanup" || p.N != 3 {
		t.Errorf("point = %+v, want func Cleanup consuming 3 stmts", p)
	}
	if !strings.Contains(p.Snippet, "prepare") {
		t.Errorf("snippet = %q, want window starting at prepare(c)", p.Snippet)
	}
}

func TestScanMIFS(t *testing.T) {
	mm := compile(t, "MIFS", `
change {
	if $EXPR{var=node} {
		$BLOCK{stmts=1,4}
		continue
	}
} into {
}`)
	pts, err := ScanSource("client.go", []byte(target), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatalf("ScanSource: %v", err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %d, want 1 (the if/continue in Sweep)", len(pts))
	}
	if pts[0].Func != "Sweep" {
		t.Errorf("func = %q, want Sweep", pts[0].Func)
	}
}

func TestScanWPF(t *testing.T) {
	mm := compile(t, "WPF", `
change {
	$CALL#c{name=utils.Execute}(..., $STRING#s{val=*-*}, ...)
} into {
	$CALL#c(..., $CORRUPT($STRING#s), ...)
}`)
	pts, err := ScanSource("client.go", []byte(target), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatalf("ScanSource: %v", err)
	}
	// Only the call with a "-"-bearing string literal matches.
	if len(pts) != 1 {
		t.Fatalf("points = %d, want 1", len(pts))
	}
	if !strings.Contains(pts[0].Snippet, "iptables") {
		t.Errorf("snippet = %q, want the iptables call", pts[0].Snippet)
	}
}

func TestScanCallReturnValueUsedDoesNotMatch(t *testing.T) {
	// Statement-position $CALL must only match calls whose return value
	// is unused (G-SWFIT MFC rule).
	src := `package p

func F() {
	before()
	x := DeleteNet("a")
	after(x)
}
`
	mm := compile(t, "MFC", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`)
	pts, err := ScanSource("p.go", []byte(src), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatalf("ScanSource: %v", err)
	}
	if len(pts) != 0 {
		t.Fatalf("points = %d, want 0 (return value is assigned)", len(pts))
	}
}

func TestScanProjectDeterministicOrder(t *testing.T) {
	mm := compile(t, "calls", `
change {
	$CALL{name=*}(...)
} into {
}`)
	files := map[string][]byte{
		"b.go": []byte("package p\nfunc B() { x() }\n"),
		"a.go": []byte("package p\nfunc A() { y() }\n"),
	}
	pts, err := ScanProject(files, []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatalf("ScanProject: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].File != "a.go" || pts[1].File != "b.go" {
		t.Errorf("order = %s, %s; want a.go then b.go", pts[0].File, pts[1].File)
	}
}

func TestScanParseError(t *testing.T) {
	if _, err := ScanSource("bad.go", []byte("not go"), nil); err == nil {
		t.Fatal("ScanSource should fail on invalid source")
	}
}

func TestCollectListsCoversNestedBodies(t *testing.T) {
	src := `package p

func F(xs []int) {
	if len(xs) > 0 {
		g()
	} else {
		h()
	}
	for i := 0; i < 3; i++ {
		g()
	}
	switch len(xs) {
	case 0:
		g()
	default:
		h()
	}
}
`
	mm := compile(t, "g", `
change {
	$CALL{name=g}(...)
} into {
}`)
	pts, err := ScanSource("p.go", []byte(src), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatalf("ScanSource: %v", err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3 (if body, for body, case body)", len(pts))
	}
}

func TestInjectionPointID(t *testing.T) {
	p := InjectionPoint{Spec: "MFC", File: "a.go", Func: "F", ListIndex: 2, Start: 1, N: 3}
	q := p
	q.Start = 2
	if p.ID() == q.ID() {
		t.Error("distinct points must have distinct IDs")
	}
}

func TestScanMethodReceiverNames(t *testing.T) {
	src := `package p

type C struct{}

func (c *C) Close() {
	pre()
	DeleteAll(c)
	post()
}
`
	mm := compile(t, "MFC", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`)
	pts, err := ScanSource("p.go", []byte(src), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatalf("ScanSource: %v", err)
	}
	if len(pts) != 1 || pts[0].Func != "C.Close" {
		t.Fatalf("points = %+v, want one point in C.Close", pts)
	}
}

func TestScanFuncLitBodies(t *testing.T) {
	// Injection points inside function literals (deferred closures,
	// callbacks) must be discovered too.
	src := `package p

func F() {
	run(func() {
		pre()
		DeleteAll()
		post()
	})
	defer func() {
		pre()
		DeleteAll()
		post()
	}()
}
`
	mm := compile(t, "MFC", `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`)
	pts, err := ScanSource("p.go", []byte(src), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatalf("ScanSource: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2 (callback body + deferred closure body)", len(pts))
	}
}

func TestScanDeterministicAcrossReparse(t *testing.T) {
	// ListIndex-based injection points must survive a re-parse of the
	// same source (the mutator depends on this).
	mm := compile(t, "calls", `
change {
	$CALL{name=*}(...)
} into {
}`)
	pts1, err := ScanSource("client.go", []byte(target), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatal(err)
	}
	pts2, err := ScanSource("client.go", []byte(target), []*pattern.MetaModel{mm})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts1) != len(pts2) {
		t.Fatalf("counts differ: %d vs %d", len(pts1), len(pts2))
	}
	for i := range pts1 {
		if pts1[i].ID() != pts2[i].ID() {
			t.Fatalf("point %d differs: %s vs %s", i, pts1[i].ID(), pts2[i].ID())
		}
	}
}
