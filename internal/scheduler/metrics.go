package scheduler

import (
	"time"

	"profipy/internal/obs"
)

// metrics is the scheduler's instrument panel. All fields resolve their
// registry children once at construction, so the per-event cost is one
// atomic add. A nil *metrics is valid and inert, keeping every call
// site unconditional.
type metrics struct {
	queueDepth *obs.Gauge
	running    *obs.Gauge
	finished   *obs.CounterVec // state = done | failed | canceled
	jobDur     *obs.Histogram
	phaseDur   *obs.HistogramVec // phase = scan | coverage | execute | analyze | ...
	retries    *obs.Counter
}

// jobDurBuckets spans sub-second demo campaigns to hour-long sweeps.
var jobDurBuckets = []float64{.01, .05, .1, .5, 1, 5, 15, 60, 300, 1800, 3600}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		queueDepth: reg.Gauge("profipy_scheduler_queue_depth",
			"Jobs submitted but not yet started."),
		running: reg.Gauge("profipy_scheduler_jobs_running",
			"Jobs currently executing on the worker pool."),
		finished: reg.CounterVec("profipy_scheduler_jobs_finished_total",
			"Jobs that reached a terminal state, by outcome.", "state"),
		jobDur: reg.Histogram("profipy_scheduler_job_duration_seconds",
			"Wall-clock job execution time (start to terminal state).", jobDurBuckets),
		phaseDur: reg.HistogramVec("profipy_scheduler_job_phase_seconds",
			"Wall-clock time jobs spend in each workflow phase.", jobDurBuckets, "phase"),
		retries: reg.Counter("profipy_scheduler_job_retries_total",
			"Job attempts re-run after a retryable error."),
	}
}

func (m *metrics) retried() {
	if m != nil {
		m.retries.Inc()
	}
}

func (m *metrics) enqueued() {
	if m != nil {
		m.queueDepth.Inc()
	}
}

func (m *metrics) dequeued(n int) {
	if m != nil {
		m.queueDepth.Add(float64(-n))
	}
}

func (m *metrics) started() {
	if m != nil {
		m.running.Inc()
	}
}

// terminal records a job reaching its final state. Jobs canceled while
// still queued never started, so they carry no duration or running
// decrement.
func (m *metrics) terminal(st Status) {
	if m == nil {
		return
	}
	m.finished.With(string(st.State)).Inc()
	if st.StartedMS != 0 {
		m.running.Dec()
		if st.FinishedMS >= st.StartedMS {
			m.jobDur.Observe(float64(st.FinishedMS-st.StartedMS) / 1000)
		}
	}
}

func (m *metrics) phase(name string, d time.Duration) {
	if m != nil && name != "" {
		m.phaseDur.With(name).Observe(d.Seconds())
	}
}
