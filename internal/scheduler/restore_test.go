package scheduler

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestOnFinishObservesEveryTerminalJob covers the journal hook across
// all three terminal paths: normal completion, failure, and
// cancellation of a queued job.
func TestOnFinishObservesEveryTerminalJob(t *testing.T) {
	var mu sync.Mutex
	finished := map[string]State{}
	s := New(Config{Workers: 1, OnFinish: func(st Status) {
		mu.Lock()
		finished[st.ID] = st.State
		mu.Unlock()
	}})
	defer s.Close()

	okID, err := s.Submit("ok", func(ctx context.Context, report func(Progress)) (any, error) {
		return "r", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	failID, err := s.Submit("fail", func(ctx context.Context, report func(Progress)) (any, error) {
		return nil, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(okID)
	s.Wait(failID)

	gate := make(chan struct{})
	defer close(gate)
	blockID, err := s.Submit("block", func(ctx context.Context, report func(Progress)) (any, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	// While the worker is blocked, a queued job canceled before running
	// must also reach the hook.
	queuedID, err := s.Submit("queued", func(ctx context.Context, report func(Progress)) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(queuedID)
	s.Cancel(blockID)
	s.Wait(blockID)

	mu.Lock()
	defer mu.Unlock()
	want := map[string]State{okID: Done, failID: Failed, queuedID: Canceled, blockID: Canceled}
	for id, state := range want {
		if finished[id] != state {
			t.Errorf("job %s journaled as %q, want %q", id, finished[id], state)
		}
	}
}

// TestRestoreSeedsTerminalHistory verifies restored jobs are served by
// Status/List/Wait and that new submissions never collide with restored
// IDs.
func TestRestoreSeedsTerminalHistory(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	s.Restore([]Status{
		{ID: "job-7", Name: "old", State: Done, Result: "camp-3",
			Progress: Progress{Phase: "analyze", Done: 5, Total: 5},
			PhaseMillis: map[string]int64{"execute": 12}, EnqueuedMS: 1000, FinishedMS: 2000},
		{ID: "job-2", Name: "older", State: Failed, Error: "boom"},
		{ID: "job-9", Name: "still-running", State: Running}, // must be skipped
		{ID: "", State: Done},                                // must be skipped
	})

	st, ok := s.Status("job-7")
	if !ok || st.State != Done || st.Result.(string) != "camp-3" || st.PhaseMillis["execute"] != 12 {
		t.Fatalf("restored job-7 = %+v", st)
	}
	if st.EnqueuedMS != 1000 || st.FinishedMS != 2000 {
		t.Errorf("timestamps not restored: %+v", st)
	}
	if st, ok := s.Status("job-2"); !ok || st.State != Failed || st.Error != "boom" {
		t.Errorf("restored job-2 = %+v", st)
	}
	if _, ok := s.Status("job-9"); ok {
		t.Error("non-terminal snapshot was restored")
	}
	// Wait on restored history returns immediately.
	if st, ok := s.Wait("job-7"); !ok || st.State != Done {
		t.Errorf("Wait(job-7) = %+v, %v", st, ok)
	}
	// A new submission gets an ID beyond the restored maximum.
	id, err := s.Submit("new", func(ctx context.Context, report func(Progress)) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-8" {
		t.Errorf("new job id = %s, want job-8 (past restored job-7)", id)
	}
	if _, exists := map[string]bool{"job-7": true, "job-2": true}[id]; exists {
		t.Errorf("new job id %s collides with restored history", id)
	}
	s.Wait(id)
	if got := len(s.List()); got != 3 {
		t.Errorf("List has %d jobs, want 3 (2 restored + 1 new)", got)
	}
}
