package scheduler

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRetryableJobRetriesUntilSuccess(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, MaxRetries: 3, RetryBackoff: 1})
	defer s.Close()
	var calls atomic.Int32
	id, err := s.Submit("flaky", func(ctx context.Context, report func(Progress)) (any, error) {
		if calls.Add(1) < 3 {
			return nil, MarkRetryable(errors.New("transient"))
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := s.Wait(id)
	if !ok || st.State != Done {
		t.Fatalf("job = %+v, want Done", st)
	}
	if calls.Load() != 3 {
		t.Fatalf("task ran %d times, want 3", calls.Load())
	}
	if st.Attempts != 3 {
		t.Fatalf("status attempts = %d, want 3", st.Attempts)
	}
}

func TestRetriesExhausted(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, MaxRetries: 2, RetryBackoff: 1})
	defer s.Close()
	var calls atomic.Int32
	id, _ := s.Submit("doomed", func(ctx context.Context, report func(Progress)) (any, error) {
		calls.Add(1)
		return nil, MarkRetryable(errors.New("still broken"))
	})
	st, _ := s.Wait(id)
	if st.State != Failed {
		t.Fatalf("job = %+v, want Failed", st)
	}
	if calls.Load() != 3 { // initial attempt + 2 retries
		t.Fatalf("task ran %d times, want 3", calls.Load())
	}
}

func TestNonRetryableFailsOnFirstAttempt(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, MaxRetries: 5, RetryBackoff: 1})
	defer s.Close()
	var calls atomic.Int32
	id, _ := s.Submit("fatal", func(ctx context.Context, report func(Progress)) (any, error) {
		calls.Add(1)
		return nil, errors.New("deterministic failure")
	})
	st, _ := s.Wait(id)
	if st.State != Failed {
		t.Fatalf("job = %+v, want Failed", st)
	}
	if calls.Load() != 1 {
		t.Fatalf("task ran %d times, want 1 (plain errors must not retry)", calls.Load())
	}
	if st.Attempts != 1 {
		t.Fatalf("status attempts = %d, want 1", st.Attempts)
	}
}

func TestRetryableClassification(t *testing.T) {
	if Retryable(nil) {
		t.Error("nil must not be retryable")
	}
	if Retryable(errors.New("plain")) {
		t.Error("unmarked errors must not be retryable")
	}
	if !Retryable(MarkRetryable(errors.New("transient"))) {
		t.Error("marked errors must be retryable")
	}
	if Retryable(MarkRetryable(context.Canceled)) {
		t.Error("cancellation must never retry, even when marked")
	}
	wrapped := MarkRetryable(errors.New("inner"))
	if !errors.Is(MarkRetryable(wrapped), wrapped) {
		t.Error("MarkRetryable must preserve the error chain")
	}
}
