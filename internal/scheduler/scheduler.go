// Package scheduler turns campaign execution into an asynchronous
// service: a bounded job queue drained by a fixed worker pool, with
// per-job lifecycle (queued → running → done/failed/canceled), live
// progress counters, per-phase timings, cancellation, and a bounded
// in-memory store of finished jobs. It is the missing layer between the
// HTTP front end and the campaign engine — ZOFI (Porpodas, 2019)
// observes that campaign throughput is dominated by how experiments are
// scheduled, and the same holds one level up for whole campaigns in the
// as-a-service setting.
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"profipy/internal/backoff"
	"profipy/internal/obs"
)

// State is a job lifecycle state.
type State string

const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Progress is a live snapshot of how far a job has advanced.
type Progress struct {
	// Phase is the workflow phase last reported by the task
	// (scan/coverage/execute/analyze for campaigns).
	Phase string `json:"phase,omitempty"`
	// Done / Total count completed vs planned experiments.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Task is the unit of work a job runs. It must honor ctx cancellation
// and may call report (safe for concurrent use) as it advances. The
// returned value is retained as the job result until eviction.
type Task func(ctx context.Context, report func(Progress)) (any, error)

// Status is the externally visible snapshot of a job.
type Status struct {
	ID       string   `json:"id"`
	Name     string   `json:"name,omitempty"`
	State    State    `json:"state"`
	Progress Progress `json:"progress"`
	// PhaseMillis records wall-clock time spent in each completed phase.
	PhaseMillis map[string]int64 `json:"phaseMillis,omitempty"`
	Error       string           `json:"error,omitempty"`
	// Attempts counts task executions: 1 for a job that ran once,
	// more when retryable failures were re-run (Config.MaxRetries).
	Attempts int `json:"attempts,omitempty"`
	// Unix-millisecond lifecycle timestamps (zero = not reached).
	EnqueuedMS int64 `json:"enqueuedMs,omitempty"`
	StartedMS  int64 `json:"startedMs,omitempty"`
	FinishedMS int64 `json:"finishedMs,omitempty"`
	// Result is whatever the task returned; nil unless State is Done.
	Result any `json:"-"`
}

// Errors returned by Submit and Cancel.
var (
	ErrQueueFull = errors.New("scheduler: job queue full")
	ErrClosed    = errors.New("scheduler: closed")
)

// Config sizes the scheduler.
type Config struct {
	// Workers is the number of jobs executed concurrently (default 2).
	Workers int
	// QueueDepth bounds the number of submitted-but-not-started jobs;
	// Submit fails with ErrQueueFull beyond it (default 64).
	QueueDepth int
	// Retain bounds how many finished jobs are kept for inspection;
	// the oldest terminal jobs are evicted first (default 256).
	Retain int
	// OnFinish, when set, observes every job that reaches a terminal
	// state (done, failed or canceled — including jobs canceled while
	// still queued). The SaaS layer journals these snapshots to the
	// result store so job history survives restarts. Called outside
	// scheduler locks; must be safe for concurrent use.
	OnFinish func(Status)
	// Metrics, when set, registers the scheduler's metric families
	// (queue depth, running/finished jobs, job and phase latency) on
	// the registry and keeps them current.
	Metrics *obs.Registry
	// MaxRetries re-runs a job up to this many extra times when its
	// task fails with a retryable error (wrapped via MarkRetryable).
	// Cancellation is never retried. Default 0: fail fast.
	MaxRetries int
	// RetryBackoff is the base delay between attempts; attempt k waits
	// RetryBackoff·2^k with ±20% jitter, capped at 30s (default 250ms).
	RetryBackoff time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Retain <= 0 {
		c.Retain = 256
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	return c
}

// retryableError marks a task error as safe to re-run.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// MarkRetryable wraps an error so the scheduler may re-run the job
// (transient infrastructure failures: an unreachable store, a worker
// fleet mid-restart). Idempotent tasks only — the whole job re-executes.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// Retryable reports whether err (or anything it wraps) was marked
// retryable. Context cancellation is never retryable.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	var re *retryableError
	return errors.As(err, &re)
}

// job is the internal mutable record behind a Status.
type job struct {
	id   string
	name string
	task Task
	met  *metrics // shared with the scheduler; nil-safe

	mu         sync.Mutex
	state      State
	prog       Progress
	attempts   int
	phaseMS    map[string]int64
	phaseStart time.Time
	err        error
	result     any
	enqueued   time.Time
	started    time.Time
	finished   time.Time
	cancel     context.CancelFunc // non-nil while running
	done       chan struct{}      // closed on terminal state
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, Name: j.name, State: j.state, Progress: j.prog, Attempts: j.attempts,
		EnqueuedMS: unixMS(j.enqueued), StartedMS: unixMS(j.started), FinishedMS: unixMS(j.finished),
		Result: j.result,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if len(j.phaseMS) > 0 {
		st.PhaseMillis = make(map[string]int64, len(j.phaseMS))
		for k, v := range j.phaseMS {
			st.PhaseMillis[k] = v
		}
	}
	return st
}

func unixMS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

// report folds a task progress update into the job. Counters are
// monotonic within a phase (stale updates from parallel experiment
// workers cannot move them backwards); a phase transition resets them,
// since phases legitimately shrink the denominator (coverage pruning
// drops uncovered points between the coverage and execute phases), and
// accounts the finished phase's wall time.
func (j *job) report(p Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Running {
		return // late update from an already-finished or canceled job
	}
	if p.Phase != j.prog.Phase {
		if j.prog.Phase != "" {
			j.phaseMS[j.prog.Phase] += time.Since(j.phaseStart).Milliseconds()
			j.met.phase(j.prog.Phase, time.Since(j.phaseStart))
		}
		j.phaseStart = time.Now()
		j.prog = p
		return
	}
	if p.Done > j.prog.Done {
		j.prog.Done = p.Done
	}
	if p.Total > j.prog.Total {
		j.prog.Total = p.Total
	}
}

// Scheduler owns the queue, the worker pool, and the job store. The
// queue is an explicit pending list (not a channel) so that canceling a
// queued job frees its slot immediately instead of holding it until a
// worker pops and skips the corpse.
type Scheduler struct {
	cfg Config
	met *metrics // nil when Config.Metrics is unset

	mu      sync.Mutex
	cond    *sync.Cond // signals workers: pending grew or closed
	jobs    map[string]*job
	order   []string // submission order, for listing and eviction
	pending []*job   // FIFO of queued jobs, bounded by QueueDepth
	nextID  int
	closed  bool

	// recent is a ring of the last completed jobs' execution times,
	// feeding RetryAfterEstimate; guarded by mu.
	recent    [recentWindow]time.Duration
	recentLen int
	recentIdx int

	wg         sync.WaitGroup
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// recentWindow bounds the duration ring: enough samples to smooth one
// noisy campaign, small enough that the estimate tracks load shifts.
const recentWindow = 32

// New builds a scheduler and starts its worker pool.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:        cfg,
		met:        newMetrics(cfg.Metrics),
		jobs:       make(map[string]*job),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Workers reports the configured pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Submit enqueues a task and returns its job ID immediately. It fails
// with ErrQueueFull when the queue is at capacity and ErrClosed after
// Close.
func (s *Scheduler) Submit(name string, t Task) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", ErrClosed
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return "", ErrQueueFull
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	s.enqueueLocked(id, name, t)
	s.mu.Unlock()
	s.met.enqueued()
	return id, nil
}

// SubmitID enqueues a task under a caller-chosen job ID — the recovery
// path re-admits journaled jobs this way, so IDs the API layer derived
// from job numbers (campaign IDs) stay stable across restarts. The ID
// counter advances past numeric IDs ("job-N"), so later Submit calls
// cannot collide with recovered jobs. Fails with ErrQueueFull,
// ErrClosed, or an error when the ID is empty or already known.
func (s *Scheduler) SubmitID(id, name string, t Task) error {
	if id == "" {
		return errors.New("scheduler: empty job id")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if _, exists := s.jobs[id]; exists {
		s.mu.Unlock()
		return fmt.Errorf("scheduler: job %s already exists", id)
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return ErrQueueFull
	}
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > s.nextID {
		s.nextID = n
	}
	s.enqueueLocked(id, name, t)
	s.mu.Unlock()
	s.met.enqueued()
	return nil
}

// enqueueLocked creates a queued job and places it on the pending list.
// Caller holds s.mu and has already checked closed/queue-depth.
func (s *Scheduler) enqueueLocked(id, name string, t Task) {
	j := &job{
		id:       id,
		name:     name,
		task:     t,
		met:      s.met,
		state:    Queued,
		phaseMS:  make(map[string]int64),
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pending = append(s.pending, j)
	s.cond.Signal()
}

// Status returns the snapshot of one job.
func (s *Scheduler) Status(id string) (Status, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// List returns snapshots of every retained job in submission order.
func (s *Scheduler) List() []Status {
	s.mu.Lock()
	js := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = j.status()
	}
	return out
}

// Cancel requests cancellation of a job. A queued job is finished as
// Canceled immediately; a running job has its context canceled and
// finishes once in-flight experiments drain. Canceling a terminal job
// is a no-op. The returned snapshot reflects the post-cancel state.
func (s *Scheduler) Cancel(id string) (Status, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	// Pull the job out of the pending list first so its queue slot is
	// freed immediately and no worker can start it underneath us.
	s.mu.Lock()
	for i, p := range s.pending {
		if p == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			s.met.dequeued(1)
			break
		}
	}
	s.mu.Unlock()
	j.mu.Lock()
	switch j.state {
	case Queued:
		j.state = Canceled
		j.err = context.Canceled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		s.finished(j)
	case Running:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default:
		j.mu.Unlock()
	}
	return j.status(), true
}

// Wait blocks until the job reaches a terminal state and returns its
// final snapshot. The second result is false for unknown job IDs.
func (s *Scheduler) Wait(id string) (Status, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	<-j.done
	return j.status(), true
}

// Close stops accepting submissions, cancels running jobs, and waits
// for the worker pool to drain. Queued jobs finish as Canceled without
// ever running.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	drained := s.pending
	s.pending = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.met.dequeued(len(drained))
	for _, j := range drained {
		j.mu.Lock()
		canceled := false
		if j.state == Queued {
			j.state = Canceled
			j.err = context.Canceled
			j.finished = time.Now()
			close(j.done)
			canceled = true
		}
		j.mu.Unlock()
		if canceled {
			s.met.terminal(j.status())
			if s.cfg.OnFinish != nil {
				s.cfg.OnFinish(j.status())
			}
		}
	}
	s.baseCancel()
	s.wg.Wait()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return // closed and drained
		}
		j := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		s.met.dequeued(1)
		s.runJob(j)
	}
}

func (s *Scheduler) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.state != Queued { // canceled between queue pop and here
		j.mu.Unlock()
		return
	}
	if s.baseCtx.Err() != nil { // scheduler closing: don't start the task
		j.state = Canceled
		j.err = context.Canceled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		s.finished(j)
		return
	}
	j.state = Running
	j.started = time.Now()
	j.phaseStart = j.started
	j.cancel = cancel
	j.mu.Unlock()
	s.met.started()

	// Retry loop: a task failure marked retryable (MarkRetryable) is
	// re-run up to MaxRetries extra times with exponential backoff and
	// jitter. Cancellation always wins; progress counters carry over
	// monotonically across attempts.
	var result any
	var err error
	for attempt := 0; ; attempt++ {
		j.mu.Lock()
		j.attempts = attempt + 1
		j.mu.Unlock()
		result, err = j.task(ctx, j.report)
		if err == nil || !Retryable(err) || attempt >= s.cfg.MaxRetries {
			break
		}
		s.met.retried()
		if !backoff.Sleep(ctx, attempt, s.cfg.RetryBackoff, 30*time.Second, 0.2, nil) {
			err = context.Canceled
			break
		}
	}

	j.mu.Lock()
	if j.prog.Phase != "" {
		j.phaseMS[j.prog.Phase] += time.Since(j.phaseStart).Milliseconds()
		j.met.phase(j.prog.Phase, time.Since(j.phaseStart))
	}
	j.finished = time.Now()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = Done
		j.result = result
	case errors.Is(err, context.Canceled):
		j.state = Canceled
		j.err = context.Canceled
	default:
		j.state = Failed
		j.err = err
	}
	close(j.done)
	ran := j.finished.Sub(j.started)
	j.mu.Unlock()
	s.noteDuration(ran)
	s.finished(j)
}

// noteDuration folds one finished job's execution time into the recent
// ring behind RetryAfterEstimate.
func (s *Scheduler) noteDuration(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.recent[s.recentIdx] = d
	s.recentIdx = (s.recentIdx + 1) % recentWindow
	if s.recentLen < recentWindow {
		s.recentLen++
	}
	s.mu.Unlock()
}

// RetryAfterEstimate predicts how long a submitter rejected with
// ErrQueueFull should wait before retrying: the current queue depth
// (plus the rejected job itself) times the recent mean job duration,
// divided across the worker pool. ok is false until at least one job
// has finished — the caller falls back to a fixed hint.
func (s *Scheduler) RetryAfterEstimate() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recentLen == 0 {
		return 0, false
	}
	var sum time.Duration
	for i := 0; i < s.recentLen; i++ {
		sum += s.recent[i]
	}
	mean := sum / time.Duration(s.recentLen)
	waiting := len(s.pending) + 1
	return mean * time.Duration(waiting) / time.Duration(s.cfg.Workers), true
}

// finished runs the terminal-state bookkeeping for a job: metrics,
// retention eviction, then the OnFinish journal hook (outside all
// locks).
func (s *Scheduler) finished(j *job) {
	s.met.terminal(j.status())
	s.evict()
	if s.cfg.OnFinish != nil {
		s.cfg.OnFinish(j.status())
	}
}

// Restore seeds the job store with terminal jobs from a previous
// process (journaled through OnFinish and reloaded at startup): they
// become visible to Status/List/Wait as finished history, and the ID
// counter advances past them so new jobs never collide. Non-terminal
// snapshots and duplicates are skipped.
func (s *Scheduler) Restore(sts []Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range sts {
		if st.ID == "" || !st.State.Terminal() {
			continue
		}
		if _, exists := s.jobs[st.ID]; exists {
			continue
		}
		j := &job{
			id:       st.ID,
			name:     st.Name,
			state:    st.State,
			prog:     st.Progress,
			result:   st.Result,
			enqueued: msTime(st.EnqueuedMS),
			started:  msTime(st.StartedMS),
			finished: msTime(st.FinishedMS),
			phaseMS:  make(map[string]int64, len(st.PhaseMillis)),
			done:     make(chan struct{}),
		}
		for k, v := range st.PhaseMillis {
			j.phaseMS[k] = v
		}
		if st.Error != "" {
			j.err = errors.New(st.Error)
		}
		close(j.done)
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		var n int
		if _, err := fmt.Sscanf(st.ID, "job-%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
}

// AdvanceIDs bumps the job ID counter to at least n, so IDs derived
// from job numbers by the API layer (campaign IDs) can never collide
// with artifacts of a crashed process whose jobs were never journaled.
func (s *Scheduler) AdvanceIDs(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.nextID {
		s.nextID = n
	}
}

func msTime(ms int64) time.Time {
	if ms == 0 {
		return time.Time{}
	}
	return time.UnixMilli(ms)
}

// evict drops the oldest terminal jobs beyond the retention limit.
// Queued and running jobs are never evicted.
func (s *Scheduler) evict() {
	s.mu.Lock()
	defer s.mu.Unlock()
	terminal := 0
	for _, id := range s.order {
		if st := s.jobState(id); st.Terminal() {
			terminal++
		}
	}
	if terminal <= s.cfg.Retain {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		if terminal > s.cfg.Retain && s.jobState(id).Terminal() {
			delete(s.jobs, id)
			terminal--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

func (s *Scheduler) jobState(id string) State {
	j := s.jobs[id]
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
