package scheduler

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// noop is a task that finishes immediately.
func noop(ctx context.Context, report func(Progress)) (any, error) { return nil, nil }

// gated builds a task that signals on started and blocks until release
// is closed (or ctx is canceled, returning the ctx error).
func gated(started chan<- string, release <-chan struct{}, name string) Task {
	return func(ctx context.Context, report func(Progress)) (any, error) {
		started <- name
		select {
		case <-release:
			return name, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestDrainOrderingSingleWorker(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 64})
	defer s.Close()
	var mu sync.Mutex
	var got []int
	var ids []string
	for i := 0; i < 20; i++ {
		i := i
		id, err := s.Submit(fmt.Sprintf("t%d", i), func(ctx context.Context, report func(Progress)) (any, error) {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			return nil, nil
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		st, ok := s.Wait(id)
		if !ok || st.State != Done {
			t.Fatalf("job %s: %+v", id, st)
		}
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("drain order = %v, want FIFO", got)
		}
	}
}

func TestConcurrentSubmitAllComplete(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 256})
	defer s.Close()
	const n = 64
	var ran atomic.Int64
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, err := s.Submit("c", func(ctx context.Context, report func(Progress)) (any, error) {
				ran.Add(1)
				return nil, nil
			})
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			ids <- id
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[string]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job id %s", id)
		}
		seen[id] = true
		if st, ok := s.Wait(id); !ok || st.State != Done {
			t.Fatalf("job %s did not finish: %+v", id, st)
		}
	}
	if ran.Load() != n {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), n)
	}
}

func TestWorkerPoolSizing(t *testing.T) {
	const workers = 3
	s := New(Config{Workers: workers, QueueDepth: 16})
	defer s.Close()
	started := make(chan string, 8)
	release := make(chan struct{})
	var ids []string
	for i := 0; i < workers+2; i++ {
		id, err := s.Submit("g", gated(started, release, fmt.Sprintf("g%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Exactly `workers` tasks start; the rest stay queued.
	for i := 0; i < workers; i++ {
		<-started
	}
	select {
	case name := <-started:
		t.Fatalf("task %s started beyond pool size %d", name, workers)
	case <-time.After(50 * time.Millisecond):
	}
	running, queued := 0, 0
	for _, st := range s.List() {
		switch st.State {
		case Running:
			running++
		case Queued:
			queued++
		}
	}
	if running != workers || queued != 2 {
		t.Fatalf("running=%d queued=%d, want %d/%d", running, queued, workers, 2)
	}
	close(release)
	for i := 0; i < 2; i++ {
		<-started
	}
	for _, id := range ids {
		if st, _ := s.Wait(id); st.State != Done {
			t.Fatalf("job %s = %s, want done", id, st.State)
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	first, err := s.Submit("first", gated(started, release, "first"))
	if err != nil {
		t.Fatal(err)
	}
	<-started // worker is now occupied
	second, err := s.Submit("second", noop)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := s.Cancel(second)
	if !ok || st.State != Canceled {
		t.Fatalf("cancel queued = %+v", st)
	}
	if st.FinishedMS == 0 {
		t.Error("canceled job has no finish time")
	}
	close(release)
	if st, _ := s.Wait(first); st.State != Done {
		t.Fatalf("first job = %s, want done", st.State)
	}
	// The canceled job must stay canceled and never run.
	if st, _ := s.Wait(second); st.State != Canceled {
		t.Fatalf("second job = %s, want canceled", st.State)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	started := make(chan string, 1)
	release := make(chan struct{}) // never closed: only ctx can end the task
	id, err := s.Submit("victim", gated(started, release, "victim"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if st, _ := s.Status(id); st.State != Running {
		t.Fatalf("state = %s, want running", st.State)
	}
	if _, ok := s.Cancel(id); !ok {
		t.Fatal("cancel: job not found")
	}
	st, _ := s.Wait(id)
	if st.State != Canceled {
		t.Fatalf("state after cancel = %s, want canceled", st.State)
	}
	if st.Error != context.Canceled.Error() {
		t.Fatalf("error = %q", st.Error)
	}
	// Canceling a terminal job is a harmless no-op.
	if st, ok := s.Cancel(id); !ok || st.State != Canceled {
		t.Fatalf("re-cancel = %+v", st)
	}
}

func TestProgressMonotonicAndPhaseTimings(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	steps := make(chan Progress)
	reported := make(chan struct{})
	id, err := s.Submit("prog", func(ctx context.Context, report func(Progress)) (any, error) {
		for p := range steps {
			report(p)
			reported <- struct{}{}
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	check := func(p Progress, wantDone, wantTotal int) {
		t.Helper()
		steps <- p
		<-reported
		st, _ := s.Status(id)
		if st.Progress.Done != wantDone || st.Progress.Total != wantTotal {
			t.Fatalf("after %+v: progress = %+v, want %d/%d", p, st.Progress, wantDone, wantTotal)
		}
	}
	check(Progress{Phase: "scan"}, 0, 0)
	check(Progress{Phase: "coverage", Done: 0, Total: 100}, 0, 100)
	// A phase transition may shrink the denominator (coverage pruning
	// reduces the execution plan): counters reset with the new phase.
	check(Progress{Phase: "execute", Done: 5, Total: 40}, 5, 40)
	// Within a phase, a stale lower counter must not move progress
	// backwards.
	check(Progress{Phase: "execute", Done: 3, Total: 40}, 5, 40)
	check(Progress{Phase: "execute", Done: 7, Total: 40}, 7, 40)
	check(Progress{Phase: "analyze", Done: 40, Total: 40}, 40, 40)
	close(steps)
	st, _ := s.Wait(id)
	if st.State != Done {
		t.Fatalf("state = %s", st.State)
	}
	for _, phase := range []string{"scan", "coverage", "execute", "analyze"} {
		if _, ok := st.PhaseMillis[phase]; !ok {
			t.Errorf("phaseMillis missing %q: %v", phase, st.PhaseMillis)
		}
	}
}

func TestQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	if _, err := s.Submit("run", gated(started, release, "run")); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy, queue empty
	if _, err := s.Submit("q1", noop); err != nil {
		t.Fatalf("submit into empty queue: %v", err)
	}
	if _, err := s.Submit("q2", noop); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestCancelQueuedFreesQueueSlot(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	if _, err := s.Submit("run", gated(started, release, "run")); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy
	queued, err := s.Submit("q", noop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("overflow", noop); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	// Canceling the queued job must free its slot immediately, while
	// the worker is still busy.
	if st, _ := s.Cancel(queued); st.State != Canceled {
		t.Fatalf("cancel = %+v", st)
	}
	if _, err := s.Submit("refill", noop); err != nil {
		t.Fatalf("submit after cancel freed slot: %v", err)
	}
}

func TestRetentionEvictsOldestFinished(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 16, Retain: 2})
	defer s.Close()
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := s.Submit(fmt.Sprintf("r%d", i), noop)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		s.Wait(id)
	}
	list := s.List()
	if len(list) != 2 {
		t.Fatalf("retained %d jobs, want 2: %+v", len(list), list)
	}
	if list[0].ID != ids[3] || list[1].ID != ids[4] {
		t.Fatalf("retained %s,%s; want newest %s,%s", list[0].ID, list[1].ID, ids[3], ids[4])
	}
	if _, ok := s.Status(ids[0]); ok {
		t.Error("evicted job still visible")
	}
}

func TestCloseCancelsAndRejects(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	started := make(chan string, 1)
	release := make(chan struct{}) // never closed
	running, err := s.Submit("running", gated(started, release, "running"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var queuedRan atomic.Bool
	queued, err := s.Submit("queued", func(ctx context.Context, report func(Progress)) (any, error) {
		queuedRan.Store(true)
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if st, _ := s.Status(running); st.State != Canceled {
		t.Fatalf("running job after Close = %s, want canceled", st.State)
	}
	if st, _ := s.Status(queued); st.State != Canceled {
		t.Fatalf("queued job after Close = %s, want canceled", st.State)
	}
	// Close must not waste work running queued tasks against a dead
	// context.
	if queuedRan.Load() {
		t.Error("queued task ran during Close")
	}
	if _, err := s.Submit("late", noop); err != ErrClosed {
		t.Fatalf("submit after Close: err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestUnknownJobID(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if _, ok := s.Status("job-999"); ok {
		t.Error("Status on unknown id")
	}
	if _, ok := s.Wait("job-999"); ok {
		t.Error("Wait on unknown id")
	}
	if _, ok := s.Cancel("job-999"); ok {
		t.Error("Cancel on unknown id")
	}
}

func TestFailedTaskReportsError(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	id, err := s.Submit("boom", func(ctx context.Context, report func(Progress)) (any, error) {
		return nil, fmt.Errorf("scan: bad DSL")
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Wait(id)
	if st.State != Failed || st.Error != "scan: bad DSL" {
		t.Fatalf("status = %+v", st)
	}
}

func TestRetryAfterEstimate(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Close()
	if _, ok := s.RetryAfterEstimate(); ok {
		t.Fatal("estimate available before any job finished")
	}

	// Occupy both workers and queue three jobs, so the estimate sees a
	// known backlog.
	started := make(chan string, 2)
	release := make(chan struct{})
	defer close(release)
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("run", gated(started, release, "run")); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	<-started
	for i := 0; i < 3; i++ {
		if _, err := s.Submit("q", noop); err != nil {
			t.Fatal(err)
		}
	}

	// Seed the duration ring directly (job wall times are not
	// deterministic in a test): mean = 200ms.
	s.noteDuration(100 * time.Millisecond)
	s.noteDuration(300 * time.Millisecond)

	// 3 queued + the rejected job itself = 4 waiting, mean 200ms over 2
	// workers: 400ms.
	est, ok := s.RetryAfterEstimate()
	if !ok {
		t.Fatal("no estimate after durations recorded")
	}
	if est != 400*time.Millisecond {
		t.Fatalf("estimate = %v, want 400ms", est)
	}
}

func TestFinishedJobFeedsRetryEstimate(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	id, err := s.Submit("slow", func(ctx context.Context, report func(Progress)) (any, error) {
		time.Sleep(5 * time.Millisecond)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(id)
	est, ok := s.RetryAfterEstimate()
	if !ok {
		t.Fatal("no estimate after a job finished")
	}
	if est <= 0 {
		t.Fatalf("estimate = %v, want > 0", est)
	}
}
