package scheduler

import (
	"testing"
)

func TestSubmitIDRunsUnderChosenID(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	if err := s.SubmitID("job-7", "recovered", noop); err != nil {
		t.Fatal(err)
	}
	st, ok := s.Wait("job-7")
	if !ok || st.State != Done || st.Name != "recovered" {
		t.Fatalf("recovered job = %+v", st)
	}
	// The ID counter advanced past the recovered job: the next Submit
	// must not collide with it.
	id, err := s.Submit("fresh", noop)
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-8" {
		t.Fatalf("next submit got %s, want job-8", id)
	}
}

func TestSubmitIDRejectsBadIDs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	if err := s.SubmitID("", "x", noop); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := s.SubmitID("job-3", "x", noop); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitID("job-3", "x", noop); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	// Non-numeric IDs work too; they just don't advance the counter.
	if err := s.SubmitID("weird-id", "x", noop); err != nil {
		t.Fatal(err)
	}
	if st, ok := s.Wait("weird-id"); !ok || st.State != Done {
		t.Fatalf("weird-id = %+v", st)
	}
}

func TestSubmitIDQueueFullAndClosed(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	started := make(chan string, 1)
	release := make(chan struct{})
	if _, err := s.Submit("run", gated(started, release, "run")); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy, queue empty
	if err := s.SubmitID("job-10", "q", noop); err != nil {
		t.Fatalf("submit into empty queue: %v", err)
	}
	if err := s.SubmitID("job-11", "overflow", noop); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	// Cancel-while-queued frees the slot for a recovered job as well.
	if st, _ := s.Cancel("job-10"); st.State != Canceled {
		t.Fatalf("cancel queued = %+v", st)
	}
	if err := s.SubmitID("job-12", "refill", noop); err != nil {
		t.Fatalf("submit after cancel freed slot: %v", err)
	}
	close(release)
	s.Close()
	if err := s.SubmitID("job-13", "late", noop); err != ErrClosed {
		t.Fatalf("err after close = %v, want ErrClosed", err)
	}
}
