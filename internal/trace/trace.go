// Package trace implements the failure visualization substrate of §IV-D:
// a Zipkin-like span recorder for instrumented RPC/API calls, and a
// renderer that lays the recorded invocations out as events on an ASCII
// timeline, so a user can see what happened during a failed experiment.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Span is one recorded API invocation on the virtual timeline.
type Span struct {
	Name      string `json:"name"`
	Component string `json:"component"`
	StartNS   int64  `json:"startNs"`
	EndNS     int64  `json:"endNs"`
	Err       string `json:"err,omitempty"`
}

// Duration returns the span length in nanoseconds.
func (s Span) Duration() int64 { return s.EndNS - s.StartNS }

// Recorder collects spans during an experiment.
type Recorder struct {
	mu    sync.Mutex
	spans []Span
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends a span.
func (r *Recorder) Record(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, s)
}

// Spans returns a copy of the recorded spans in deterministic order:
// by StartNS, ties broken by Name. The tie-break matters once several
// recorders merge — concurrent shard recorders insert in arrival
// order, and same-start spans must still render identically on every
// run.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]Span(nil), r.spans...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Merge folds another recorder's spans into r (r is unchanged when o
// is nil or r itself). Per-shard recorders merge into the campaign's
// recorder this way; Spans' deterministic ordering makes the combined
// timeline independent of merge order.
func (r *Recorder) Merge(o *Recorder) {
	if o == nil || o == r {
		return
	}
	spans := o.Spans()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, spans...)
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// JSON serializes the spans (a Zipkin-like trace dump).
func (r *Recorder) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Spans(), "", "  ")
}

// Timeline renders the spans as an ASCII chart: one row per span, a bar
// spanning its active interval, '!' marking spans that ended in error.
func Timeline(spans []Span, width int) string {
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	if width < 20 {
		width = 20
	}
	minNS, maxNS := spans[0].StartNS, spans[0].EndNS
	for _, s := range spans {
		if s.StartNS < minNS {
			minNS = s.StartNS
		}
		if s.EndNS > maxNS {
			maxNS = s.EndNS
		}
	}
	span := maxNS - minNS
	if span <= 0 {
		span = 1
	}
	nameW := 0
	for _, s := range spans {
		label := s.Component + "/" + s.Name
		if len(label) > nameW {
			nameW = len(label)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %d spans over %.3f ms (virtual)\n", len(spans), float64(span)/1e6)
	for _, s := range spans {
		label := s.Component + "/" + s.Name
		start := int(float64(s.StartNS-minNS) / float64(span) * float64(width-1))
		end := int(float64(s.EndNS-minNS) / float64(span) * float64(width-1))
		if end < start {
			end = start
		}
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		mark := byte('=')
		if s.Err != "" {
			mark = '!'
		}
		for i := start; i <= end && i < width; i++ {
			row[i] = mark
		}
		fmt.Fprintf(&sb, "  %-*s |%s|", nameW, label, row)
		if s.Err != "" {
			fmt.Fprintf(&sb, " %s", s.Err)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
