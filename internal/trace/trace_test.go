package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderOrdersSpans(t *testing.T) {
	r := NewRecorder()
	r.Record(Span{Name: "b", StartNS: 200, EndNS: 300})
	r.Record(Span{Name: "a", StartNS: 100, EndNS: 150})
	spans := r.Spans()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("spans = %+v", spans)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if spans[0].Duration() != 50 {
		t.Errorf("duration = %d", spans[0].Duration())
	}
}

func TestSpansTieBreakByName(t *testing.T) {
	// Insert same-start spans in two different orders; Spans must give
	// the same sequence for both.
	mk := func(names ...string) []Span {
		r := NewRecorder()
		for _, n := range names {
			r.Record(Span{Name: n, StartNS: 100, EndNS: 200})
		}
		r.Record(Span{Name: "first", StartNS: 0, EndNS: 50})
		return r.Spans()
	}
	a := mk("shard-2", "shard-0", "shard-1")
	b := mk("shard-1", "shard-2", "shard-0")
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("lens = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	want := []string{"first", "shard-0", "shard-1", "shard-2"}
	for i, n := range want {
		if a[i].Name != n {
			t.Errorf("span %d = %q, want %q", i, a[i].Name, n)
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	a.Record(Span{Name: "scan", StartNS: 0, EndNS: 10})
	b.Record(Span{Name: "shard-1", StartNS: 5, EndNS: 20})
	b.Record(Span{Name: "shard-0", StartNS: 5, EndNS: 15})
	a.Merge(b)
	a.Merge(nil) // no-op
	a.Merge(a)   // self-merge must not duplicate or deadlock
	if a.Len() != 3 {
		t.Fatalf("len = %d, want 3", a.Len())
	}
	spans := a.Spans()
	got := []string{spans[0].Name, spans[1].Name, spans[2].Name}
	want := []string{"scan", "shard-0", "shard-1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	// The source recorder is untouched.
	if b.Len() != 2 {
		t.Errorf("source len = %d, want 2", b.Len())
	}
}

func TestJSONDump(t *testing.T) {
	r := NewRecorder()
	r.Record(Span{Name: "GET /v2/keys/a", Component: "urllib", StartNS: 0, EndNS: 2_000_000})
	data, err := r.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var spans []Span
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "GET /v2/keys/a" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestTimelineRendersBarsAndErrors(t *testing.T) {
	spans := []Span{
		{Name: "set", Component: "urllib", StartNS: 0, EndNS: 500},
		{Name: "get", Component: "urllib", StartNS: 500, EndNS: 1000, Err: "status 404"},
	}
	out := Timeline(spans, 40)
	if !strings.Contains(out, "urllib/set") || !strings.Contains(out, "urllib/get") {
		t.Fatalf("timeline missing labels:\n%s", out)
	}
	if !strings.Contains(out, "=") {
		t.Error("timeline missing ok bar")
	}
	if !strings.Contains(out, "!") || !strings.Contains(out, "status 404") {
		t.Error("timeline missing error marker")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 spans
		t.Errorf("timeline lines = %d, want 3\n%s", len(lines), out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	if out := Timeline(nil, 40); !strings.Contains(out, "no spans") {
		t.Errorf("empty timeline = %q", out)
	}
}

func TestTimelineZeroDurationSpan(t *testing.T) {
	out := Timeline([]Span{{Name: "x", Component: "c", StartNS: 5, EndNS: 5}}, 10)
	if !strings.Contains(out, "c/x") {
		t.Errorf("timeline = %q", out)
	}
}
