package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderOrdersSpans(t *testing.T) {
	r := NewRecorder()
	r.Record(Span{Name: "b", StartNS: 200, EndNS: 300})
	r.Record(Span{Name: "a", StartNS: 100, EndNS: 150})
	spans := r.Spans()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("spans = %+v", spans)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if spans[0].Duration() != 50 {
		t.Errorf("duration = %d", spans[0].Duration())
	}
}

func TestJSONDump(t *testing.T) {
	r := NewRecorder()
	r.Record(Span{Name: "GET /v2/keys/a", Component: "urllib", StartNS: 0, EndNS: 2_000_000})
	data, err := r.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var spans []Span
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "GET /v2/keys/a" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestTimelineRendersBarsAndErrors(t *testing.T) {
	spans := []Span{
		{Name: "set", Component: "urllib", StartNS: 0, EndNS: 500},
		{Name: "get", Component: "urllib", StartNS: 500, EndNS: 1000, Err: "status 404"},
	}
	out := Timeline(spans, 40)
	if !strings.Contains(out, "urllib/set") || !strings.Contains(out, "urllib/get") {
		t.Fatalf("timeline missing labels:\n%s", out)
	}
	if !strings.Contains(out, "=") {
		t.Error("timeline missing ok bar")
	}
	if !strings.Contains(out, "!") || !strings.Contains(out, "status 404") {
		t.Error("timeline missing error marker")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 spans
		t.Errorf("timeline lines = %d, want 3\n%s", len(lines), out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	if out := Timeline(nil, 40); !strings.Contains(out, "no spans") {
		t.Errorf("empty timeline = %q", out)
	}
}

func TestTimelineZeroDurationSpan(t *testing.T) {
	out := Timeline([]Span{{Name: "x", Component: "c", StartNS: 5, EndNS: 5}}, 10)
	if !strings.Contains(out, "c/x") {
		t.Errorf("timeline = %q", out)
	}
}
