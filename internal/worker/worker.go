// Package worker implements the remote execution agent: a process that
// registers with a profipyd control plane, heartbeats, pulls shard
// leases, rebuilds the leased campaign's execution context from its
// serialized spec and streams experiment records back over HTTP.
//
// The agent is stateless across shards — everything it needs arrives
// in the campaign spec, and everything it produces is idempotent on
// the control-plane side (records dedupe by plan index, completions
// are fenced by lease tokens). Killing a worker at any instant
// therefore costs only time: the lease expires, the shard is
// re-dispatched and the replacement regenerates byte-identical
// records, because experiment seeds derive from plan indices.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"profipy/internal/analysis"
	"profipy/internal/backoff"
	"profipy/internal/campaign"
	"profipy/internal/executor"
	"profipy/internal/kvclient"
	"profipy/internal/remote"
	"profipy/internal/sandbox"
	"profipy/internal/workload"
)

// Config parameterises an agent.
type Config struct {
	// Server is the control plane's base URL (e.g. http://host:8080).
	Server string
	// Name labels the worker in the control plane's listing.
	Name string
	// Parallel bounds concurrent experiments within a shard (<1 = 1).
	Parallel int
	// BatchSize is the number of records per ingest batch (<1 = 8).
	BatchSize int
	// Poll overrides the control plane's suggested lease-poll interval
	// (0 keeps the suggestion).
	Poll time.Duration
	// HTTPClient overrides the transport (tests inject
	// httptest clients); nil uses a client with sane timeouts.
	HTTPClient *http.Client
	// Log receives worker lifecycle events; nil uses slog.Default.
	Log *slog.Logger

	// KillAfterRecords is a chaos test hook: after this many records
	// have been produced, the agent "dies" — it stops heartbeating,
	// abandons its shard without completing it and returns ErrKilled.
	// 0 disables the hook.
	KillAfterRecords int
}

// ErrKilled is returned by Run when the KillAfterRecords chaos hook
// fired.
var ErrKilled = errors.New("worker: killed by chaos hook")

// transport attempts for record batches and registration.
const sendAttempts = 4

// Agent is one remote execution worker.
type Agent struct {
	cfg  Config
	hc   *http.Client
	log  *slog.Logger
	id   string
	hb   time.Duration
	poll time.Duration

	// runners caches the rebuilt execution context per campaign, so a
	// worker holding several shards of one campaign scans, compiles
	// and verifies the plan once.
	runners map[string]*prepared

	produced atomic.Int64
	killed   atomic.Bool
}

type prepared struct {
	runner *campaign.Runner
	err    error
}

// New builds an agent.
func New(cfg Config) *Agent {
	if cfg.Parallel < 1 {
		cfg.Parallel = 1
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 8
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	log := cfg.Log
	if log == nil {
		log = slog.Default()
	}
	return &Agent{cfg: cfg, hc: hc, log: log, runners: map[string]*prepared{}}
}

// ID returns the control-plane-assigned worker ID (empty before Run
// registered).
func (a *Agent) ID() string { return a.id }

// Run registers the agent and serves leases until ctx is canceled (or
// the chaos hook kills it). Transient transport errors retry with
// exponential backoff; a control plane that restarted (unknown worker)
// triggers re-registration.
func (a *Agent) Run(ctx context.Context) error {
	if err := a.register(ctx); err != nil {
		return err
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go a.heartbeatLoop(hbCtx)

	for attempt := 0; ; {
		if err := ctx.Err(); err != nil {
			return err
		}
		if a.dead() {
			return ErrKilled
		}
		lease, ok, err := a.lease(ctx)
		if err != nil {
			if !backoff.Sleep(ctx, attempt, 200*time.Millisecond, 5*time.Second, 0.2, nil) {
				return ctx.Err()
			}
			attempt++
			continue
		}
		attempt = 0
		if !ok {
			// Idle: nothing pending anywhere; poll again shortly.
			t := time.NewTimer(a.poll)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
			continue
		}
		if err := a.executeLease(ctx, lease); err != nil {
			if errors.Is(err, ErrKilled) {
				stopHB()
				return err
			}
			a.log.Warn("worker: shard failed", "campaign", lease.Campaign,
				"shard", lease.Shard, "err", err)
		}
	}
}

// dead reports whether the chaos hook has fired.
func (a *Agent) dead() bool {
	return a.killed.Load() ||
		(a.cfg.KillAfterRecords > 0 && int(a.produced.Load()) >= a.cfg.KillAfterRecords)
}

func (a *Agent) register(ctx context.Context) error {
	req := remote.RegisterRequest{Name: a.cfg.Name, Parallel: a.cfg.Parallel}
	var resp remote.RegisterResponse
	var lastErr error
	for attempt := 0; attempt < sendAttempts; attempt++ {
		if lastErr != nil && !backoff.Sleep(ctx, attempt-1, 200*time.Millisecond, 5*time.Second, 0.2, nil) {
			return ctx.Err()
		}
		lastErr = a.postJSON(ctx, "/api/v1/workers", req, &resp)
		if lastErr == nil {
			a.id = resp.ID
			a.hb = time.Duration(resp.HeartbeatMS) * time.Millisecond
			if a.hb <= 0 {
				a.hb = 5 * time.Second
			}
			a.poll = time.Duration(resp.PollMS) * time.Millisecond
			if a.cfg.Poll > 0 {
				a.poll = a.cfg.Poll
			}
			if a.poll <= 0 {
				a.poll = 500 * time.Millisecond
			}
			a.log.Info("worker: registered", "id", a.id, "server", a.cfg.Server)
			return nil
		}
	}
	return fmt.Errorf("worker: register: %w", lastErr)
}

// heartbeatLoop renews the worker's liveness (and thereby its lease
// expiries) until canceled. A 410 means the control plane forgot us
// (restart): re-register under the same agent.
func (a *Agent) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(a.hb)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if a.dead() {
			// Chaos hook: a dead worker stops heartbeating, which is
			// exactly how the control plane finds out.
			return
		}
		status, err := a.post(ctx, "/api/v1/workers/"+a.id+"/heartbeat", "", nil, nil)
		if err != nil {
			a.log.Warn("worker: heartbeat failed", "err", err)
			continue
		}
		if status == http.StatusGone {
			if err := a.register(ctx); err != nil {
				a.log.Warn("worker: re-register failed", "err", err)
			}
		}
	}
}

// lease polls the control plane for a shard lease.
func (a *Agent) lease(ctx context.Context) (remote.Lease, bool, error) {
	var lease remote.Lease
	status, err := a.post(ctx, "/api/v1/workers/"+a.id+"/lease", "", nil, &lease)
	if err != nil {
		return lease, false, err
	}
	switch status {
	case http.StatusOK:
		return lease, true, nil
	case http.StatusNoContent:
		return lease, false, nil
	case http.StatusGone:
		return lease, false, a.register(ctx)
	default:
		return lease, false, fmt.Errorf("worker: lease: unexpected status %d", status)
	}
}

// runnerFor rebuilds (or returns the cached) execution context for a
// campaign and verifies its plan matches the control plane's.
func (a *Agent) runnerFor(ctx context.Context, lease remote.Lease) (*campaign.Runner, error) {
	if p, ok := a.runners[lease.Campaign]; ok {
		return p.runner, p.err
	}
	p := &prepared{}
	p.runner, p.err = a.buildRunner(ctx, lease)
	if p.err != nil {
		// Don't cache failures: a transient spec-fetch error would
		// otherwise poison the campaign on this worker forever. The
		// failed shard stays leased until its TTL expires, so rebuild
		// attempts are naturally paced.
		return nil, p.err
	}
	a.runners[lease.Campaign] = p
	return p.runner, nil
}

func (a *Agent) buildRunner(ctx context.Context, lease remote.Lease) (*campaign.Runner, error) {
	var spec remote.CampaignSpec
	status, err := a.post(ctx, "/api/v1/workers/campaigns/"+url.PathEscape(lease.Campaign)+"/spec", "GET", nil, &spec)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("worker: spec fetch: status %d", status)
	}
	env, ok := kvclient.EnvByName(spec.EnvName)
	if !ok {
		return nil, fmt.Errorf("worker: campaign %s: unknown env %q", lease.Campaign, spec.EnvName)
	}
	c := &campaign.Campaign{
		Name:      spec.Name,
		Files:     spec.Files,
		ScanFiles: spec.ScanFiles,
		Faultload: spec.Faultload,
		Workload: workload.Config{
			Entry:        spec.Entry,
			Files:        spec.WorkloadFiles,
			TimeoutNS:    spec.TimeoutNS,
			MaxSteps:     spec.MaxSteps,
			WallBudgetNS: spec.WallBudgetNS,
			Rounds:       spec.Rounds,
			Env:          env,
		},
		Runtime: sandbox.NewRuntime(sandbox.RuntimeConfig{
			Cores: a.cfg.Parallel + 1, Seed: spec.Seed,
		}),
		Image:      sandbox.Image{Name: spec.ImageName, MemMB: spec.ImageMemMB, IOMBps: spec.ImageIOMBps},
		Seed:       spec.Seed,
		SampleN:    spec.SampleN,
		ReducePlan: spec.ReducePlan,
		TreeWalk:   spec.TreeWalk,
		Engine:     spec.Engine,
	}
	runner, err := campaign.NewRunner(c, spec.Covered)
	if err != nil {
		return nil, err
	}
	// Refuse to execute against a divergent plan: if the locally
	// derived exec points differ from the control plane's, shard
	// indices would name different experiments.
	if got := remote.PlanHash(runner.Points()); got != spec.PlanHash || runner.Len() != spec.NumExperiments {
		return nil, fmt.Errorf("worker: campaign %s: plan diverged (have %d points, hash %.8s, want %d, %.8s)",
			lease.Campaign, runner.Len(), got, spec.NumExperiments, spec.PlanHash)
	}
	return runner, nil
}

// executeLease runs the leased shard [Lo, Hi) and streams its records
// back in batches. Stale-lease responses abandon the shard silently —
// its new owner regenerates the records.
func (a *Agent) executeLease(ctx context.Context, lease remote.Lease) error {
	runner, err := a.runnerFor(ctx, lease)
	if err != nil {
		return err
	}
	n := lease.Hi - lease.Lo
	if lease.Lo < 0 || lease.Hi > runner.Len() || n <= 0 {
		return fmt.Errorf("worker: lease %s/%d: bad range [%d,%d)", lease.Campaign, lease.Shard, lease.Lo, lease.Hi)
	}
	a.log.Info("worker: executing shard", "campaign", lease.Campaign,
		"shard", lease.Shard, "lo", lease.Lo, "hi", lease.Hi)

	// Kinds are written per-index by the pool workers and read by the
	// single sink goroutine; executor.Local's channel hand-off orders
	// each write before its read.
	kinds := make([]string, n)
	exp := func(i int) analysis.Record {
		rec, kind := runner.ExperimentDetail(lease.Lo + i)
		kinds[i] = kind
		return rec
	}

	var batch []remote.RecordLine
	abandoned := false
	flush := func() {
		if abandoned || a.dead() || len(batch) == 0 {
			batch = nil
			return
		}
		if err := a.sendBatch(ctx, lease, batch); err != nil {
			a.log.Warn("worker: abandoning shard", "campaign", lease.Campaign,
				"shard", lease.Shard, "err", err)
			abandoned = true
		}
		batch = nil
	}
	sink := executor.SinkFunc(func(idx int, rec analysis.Record) {
		if a.dead() {
			return
		}
		batch = append(batch, remote.RecordLine{Idx: lease.Lo + idx, Kind: kinds[idx], Rec: rec})
		a.produced.Add(1)
		if len(batch) >= a.cfg.BatchSize {
			flush()
		}
	})
	local := executor.Local{Workers: a.cfg.Parallel}
	if err := local.Run(ctx, n, exp, sink); err != nil {
		return err
	}
	flush()
	if a.dead() {
		a.killed.Store(true)
		return ErrKilled
	}
	if abandoned {
		return fmt.Errorf("worker: shard %s/%d abandoned (stale lease or control plane unreachable)", lease.Campaign, lease.Shard)
	}
	status, err := a.post(ctx, "/api/v1/workers/"+a.id+"/complete", "",
		remote.CompleteRequest{Campaign: lease.Campaign, Shard: lease.Shard, Token: lease.Token}, nil)
	if err != nil {
		return err
	}
	if status == http.StatusGone {
		a.log.Warn("worker: completion rejected (lease expired)", "campaign", lease.Campaign, "shard", lease.Shard)
	}
	return nil
}

// sendBatch posts one NDJSON record batch, retrying transient errors
// with backoff. A 410 (stale token) is terminal: the lease moved on.
func (a *Agent) sendBatch(ctx context.Context, lease remote.Lease, batch []remote.RecordLine) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ln := range batch {
		if err := enc.Encode(ln); err != nil {
			return err
		}
	}
	dst := fmt.Sprintf("%s/api/v1/workers/%s/records?campaign=%s&shard=%d&token=%s",
		a.cfg.Server, a.id, url.QueryEscape(lease.Campaign), lease.Shard, lease.Token)
	var lastErr error
	for attempt := 0; attempt < sendAttempts; attempt++ {
		if lastErr != nil && !backoff.Sleep(ctx, attempt-1, 100*time.Millisecond, 2*time.Second, 0.2, nil) {
			return ctx.Err()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, dst, bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err := a.hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted:
			return nil
		case resp.StatusCode == http.StatusGone:
			return fmt.Errorf("worker: stale lease: %s", bytes.TrimSpace(body))
		default:
			lastErr = fmt.Errorf("worker: ingest status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
	}
	return lastErr
}

// postJSON posts v and decodes a 200 JSON response into out.
func (a *Agent) postJSON(ctx context.Context, path string, v, out any) error {
	status, err := a.post(ctx, path, "", v, out)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("worker: %s: status %d", path, status)
	}
	return nil
}

// post issues one request (method defaults to POST) with an optional
// JSON body, decoding any JSON response into out. Returns the status
// code; non-2xx statuses are returned, not errors, so callers can
// branch on protocol signals like 410.
func (a *Agent) post(ctx context.Context, path, method string, v, out any) (int, error) {
	if method == "" {
		method = http.MethodPost
	}
	var body io.Reader
	if v != nil {
		data, err := json.Marshal(v)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, a.cfg.Server+path, body)
	if err != nil {
		return 0, err
	}
	if v != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, nil
}
