// Prefix-snapshot fork execution (ROADMAP item 1): a campaign's
// experiments all replay the same workload prefix until their fault site
// is first reached — for late sites that is nearly the whole round,
// duplicated once per experiment. BuildPrefixes runs the base program
// once, snapshotting interpreter + container + environment state at the
// entry function's top-level statement boundaries, and maps every
// injection site to the snapshot taken just before the statement that
// first reaches it. RunForked then resumes an experiment's round 1 from
// that snapshot instead of re-running from round zero.
//
// Correctness rests on the boundary discipline: a site's snapshot
// precedes the statement during which the site's function is first
// entered, so the prefix contains no execution of any code the
// experiment mutates (mutations live inside the site function's body),
// and the base-program prefix is step-for-step identical to what the
// experiment's round 1 would have executed. Anything that breaks that
// identity — contention, uncapturable environment state, a mutated
// function captured in a closure, an overlay file the prefix wrote —
// makes the experiment fall back to a full run. Forked and straight
// execution therefore produce byte-identical records by construction.
package workload

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"profipy/internal/interp"
	"profipy/internal/sandbox"
)

// Prefix is one shared snapshot: everything needed to resume round 1 of
// any experiment whose site is first reached at this boundary. Immutable
// after capture; restores always copy.
type Prefix struct {
	// Stmt is the entry-body statement index the snapshot resumes at.
	Stmt int
	// Snap is the interpreter state (frames, cells, globals, clock).
	Snap *interp.Snapshot
	// Ctr is the container state (filesystem, logs, coverage).
	Ctr *sandbox.ContainerState
	// Env is the environment state from Config.CaptureEnv, if any.
	Env    any
	HasEnv bool
}

// PrefixStats summarizes one BuildPrefixes pass.
type PrefixStats struct {
	// Snapshots is how many distinct boundary snapshots were captured.
	Snapshots int
	// Sites is how many injection sites were requested.
	Sites int
	// Covered is how many sites got a usable prefix; the rest (never
	// reached, reached before the first boundary, or reached after
	// snapshotting stopped) fall back to full runs.
	Covered int
}

// PrefixSet maps injection sites to their shared prefixes.
type PrefixSet struct {
	prefixes map[string]*Prefix
	stats    PrefixStats
}

// For returns the prefix for a site's function, or nil.
func (ps *PrefixSet) For(fn string) *Prefix {
	if ps == nil {
		return nil
	}
	return ps.prefixes[fn]
}

// Stats reports build statistics.
func (ps *PrefixSet) Stats() PrefixStats {
	if ps == nil {
		return PrefixStats{}
	}
	return ps.stats
}

// siteRecorder observes first-reach of injection sites during the
// prefix run. It never perturbs execution (no errors, no extra steps).
type siteRecorder struct {
	want  map[string]bool
	seen  map[string]bool
	fresh []string // sites first seen since the last drain
}

func (r *siteRecorder) EnterCall(it *interp.Interp, fn string) error {
	if r.want[fn] && !r.seen[fn] {
		r.seen[fn] = true
		r.fresh = append(r.fresh, fn)
	}
	return nil
}

func (r *siteRecorder) LeaveCall(it *interp.Interp, fn string, result interp.Value) (interp.Value, error) {
	return result, nil
}

func (r *siteRecorder) drain() []string {
	out := r.fresh
	r.fresh = nil
	return out
}

// BuildPrefixes executes the base program's round 1 once in the given
// container (created from the base image, no overlay, same trigger
// conditions as an experiment's round 1), snapshotting at entry-body
// statement boundaries and assigning each injection site the snapshot
// captured just before the statement that first entered it. Sites
// reached while no snapshot is available — notably the entry function
// itself, whose EnterCall precedes the first boundary — are simply left
// uncovered. The run's own outcome is irrelevant; prefixes captured
// before a failure are still valid.
func BuildPrefixes(c *sandbox.Container, cfg Config, sites []string) (*PrefixSet, error) {
	if cfg.Entry == "" || cfg.Program == nil {
		return nil, fmt.Errorf("workload: prefixes require a compiled program and an entry")
	}
	if err := c.Start(); err != nil {
		return nil, err
	}
	defer c.Exit()
	// Round-1 conditions: the trigger is on, but the base program never
	// consults it (only injected fault code does, and there is none).
	c.SetTrigger(true)

	rec := &siteRecorder{want: make(map[string]bool, len(sites)), seen: make(map[string]bool)}
	for _, s := range sites {
		rec.want[s] = true
	}
	icfg := interp.Config{
		DeadlineNS: cfg.TimeoutNS,
		MaxSteps:   cfg.MaxSteps,
		Stdout:     c.Log("stdout"),
		Hook:       rec,
		Engine:     cfg.Engine,
	}
	it := interp.NewRun(cfg.Program, icfg)
	if cfg.Env != nil {
		cfg.Env(it, c)
	}
	if err := it.Boot(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}

	ps := &PrefixSet{prefixes: make(map[string]*Prefix)}
	var last *Prefix // snapshot captured at the previous boundary
	assign := func() {
		for _, fn := range rec.drain() {
			if last != nil {
				ps.prefixes[fn] = last
			}
		}
	}
	checkpoint := func(stmt int) bool {
		assign()
		if len(rec.seen) == len(rec.want) {
			last = nil
			return false // every site assigned; stop snapshotting
		}
		if c.Contention() != 0 {
			// Contention drives RNG draws and stalls the capture cannot
			// reproduce; stop snapshotting (should not happen on a base
			// program, which has no injected hogs).
			last = nil
			return false
		}
		snap, err := it.Snapshot()
		if err != nil {
			last = nil
			return false
		}
		pre := &Prefix{Stmt: stmt, Snap: snap, Ctr: c.CaptureState()}
		if cfg.CaptureEnv != nil {
			env, ok := cfg.CaptureEnv(c)
			if !ok {
				last = nil
				return false
			}
			pre.Env, pre.HasEnv = env, true
		} else if len(c.EnvKeys()) > 0 {
			// The environment keeps state nobody can capture.
			last = nil
			return false
		}
		ps.stats.Snapshots++
		last = pre
		return true
	}
	if cfg.WallBudgetNS > 0 {
		wd := time.AfterFunc(time.Duration(cfg.WallBudgetNS), it.Interrupt)
		defer wd.Stop()
	}
	_, _ = it.CallPrefix(cfg.Entry, checkpoint)
	assign()
	ps.stats.Sites = len(sites)
	ps.stats.Covered = len(ps.prefixes)
	return ps, nil
}

// ForkSpec carries what RunForked needs beyond the workload config.
type ForkSpec struct {
	// Prefix is the site's shared snapshot.
	Prefix *Prefix
	// BaseFiles is the campaign's base image layer; used to verify the
	// prefix did not modify a path the experiment's overlay shadows.
	BaseFiles map[string][]byte
	// Overlay is the experiment image's copy-on-write layer (the mutated
	// source), re-applied after the container state restore.
	Overlay map[string][]byte
}

// RunForked executes the experiment protocol with round 1 resumed from a
// prefix snapshot; later rounds run normally (they depend on round 1's
// end state, which differs per experiment). It returns ok=false — with
// the container in an unspecified state — whenever the experiment
// cannot be forked faithfully; the caller falls back to Run on a fresh
// container, so every fallback path stays byte-identical by re-running
// instead of improvising.
func RunForked(c *sandbox.Container, cfg Config, spec ForkSpec) (*Result, bool, error) {
	pre := spec.Prefix
	if pre == nil || cfg.Entry == "" || cfg.Program == nil || cfg.FaultFree {
		return nil, false, nil
	}
	// Overlay safety: the restore below replays the prefix container's
	// filesystem, which holds base bytes at the overlay's paths. Those
	// can only be re-shadowed if the prefix left them untouched.
	for p := range spec.Overlay {
		got, ok := pre.Ctr.File(p)
		base, bok := spec.BaseFiles[p]
		if !ok || !bok || !bytes.Equal(got, base) {
			return nil, false, nil
		}
	}
	if pre.HasEnv && cfg.RestoreEnv == nil {
		return nil, false, nil
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	if err := c.Start(); err != nil {
		return nil, false, nil
	}
	defer c.Exit()

	res := &Result{Logs: map[string]string{}}
	rr, ok := forkRound(c, cfg, pre, spec.Overlay)
	if !ok {
		return nil, false, nil
	}
	res.Rounds = append(res.Rounds, rr)
	for i := 1; i < rounds; i++ {
		c.SetTrigger(false)
		if cfg.Injector != nil {
			cfg.Injector.BeginRound(i, false)
		}
		rr, err := runRound(c, cfg)
		if err != nil {
			// Infrastructure error: fall back so the straight path can
			// surface (or not reproduce) it identically.
			return nil, false, nil
		}
		res.Rounds = append(res.Rounds, rr)
	}
	for _, name := range c.LogNames() {
		res.Logs[name] = c.LogContents(name)
	}
	return res, true, nil
}

// forkRound resumes round 1 from the prefix. ok=false means the fork
// could not be established faithfully (nothing ran, or whatever ran is
// being discarded along with the container).
func forkRound(c *sandbox.Container, cfg Config, pre *Prefix, overlay map[string][]byte) (RoundResult, bool) {
	c.SetTrigger(true)
	if cfg.Injector != nil {
		cfg.Injector.BeginRound(0, true)
	}
	c.RestoreState(pre.Ctr)
	for p, src := range overlay {
		c.FS.Write(p, src)
	}
	icfg := interp.Config{
		DeadlineNS: cfg.TimeoutNS,
		MaxSteps:   cfg.MaxSteps,
		Stdout:     c.Log("stdout"),
		Engine:     cfg.Engine,
	}
	if cfg.Injector != nil {
		icfg.Hook = cfg.Injector
	}
	it := interp.NewRun(cfg.Program, icfg)
	if cfg.Env != nil {
		cfg.Env(it, c)
	}
	if pre.HasEnv && !cfg.RestoreEnv(c, pre.Env) {
		return RoundResult{}, false
	}
	if cfg.WallBudgetNS > 0 {
		wd := time.AfterFunc(time.Duration(cfg.WallBudgetNS), it.Interrupt)
		defer wd.Stop()
	}
	_, err := it.Fork(pre.Snap)
	if errors.Is(err, interp.ErrUnforkable) {
		return RoundResult{}, false
	}
	rr, rerr := classify(it, err, cfg)
	if rerr != nil {
		return RoundResult{}, false
	}
	return rr, true
}
