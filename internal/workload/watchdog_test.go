package workload

import (
	"strings"
	"testing"
	"time"
)

// TestWatchdogKillsWallClockHang drives a round that burns real time
// without tripping the virtual deadline or step budget: only the
// wall-clock watchdog can end it. The round must come back as a
// watchdog-marked timeout instead of pinning the test forever, and the
// fault-free round must be untouched.
func TestWatchdogKillsWallClockHang(t *testing.T) {
	src := []byte(`package main

func Workload() any {
	if __fault_enabled() {
		for {
		}
	}
	return "ok"
}`)
	_, c := newContainer(map[string][]byte{"w.go": src})
	start := time.Now()
	res, err := Run(c, Config{
		Entry: "Workload", Files: []string{"w.go"}, Env: env,
		// Virtual deadline and step budget far beyond what the watchdog
		// allows, so the wall clock is the only limiter.
		TimeoutNS:    3_600_000_000_000,
		MaxSteps:     1 << 60,
		WallBudgetNS: (50 * time.Millisecond).Nanoseconds(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
	r1 := res.Round1()
	if !r1.Timeout || !r1.Watchdog {
		t.Errorf("round 1 = %+v, want watchdog timeout", r1)
	}
	if !strings.Contains(r1.Message, "watchdog") {
		t.Errorf("round 1 message = %q, want watchdog marker", r1.Message)
	}
	if r2 := res.Round2(); !r2.OK {
		t.Errorf("round 2 = %+v, want ok (fault disabled, loop never entered)", r2)
	}
}

// TestWatchdogDisabledByDefault leaves WallBudgetNS at zero and lets
// the virtual deadline fire as before: the round is a plain timeout,
// never watchdog-marked, keeping existing campaigns' records stable.
func TestWatchdogDisabledByDefault(t *testing.T) {
	src := []byte(`package main

func Workload() any {
	if __fault_enabled() {
		for {
		}
	}
	return "ok"
}`)
	_, c := newContainer(map[string][]byte{"w.go": src})
	res, err := Run(c, Config{
		Entry: "Workload", Files: []string{"w.go"}, Env: env,
		TimeoutNS: 50_000_000, // 50ms virtual
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r1 := res.Round1()
	if !r1.Timeout || r1.Watchdog {
		t.Errorf("round 1 = %+v, want plain virtual-deadline timeout", r1)
	}
}
