// Package workload implements ProFIPy's experiment execution protocol
// (§IV-B): the user-configured workload exercises the (mutated) target
// software inside a container for two rounds — round 1 with the injected
// fault enabled through the shared-memory trigger, round 2 with it
// disabled and without redeploying — under a virtual-time timeout.
// Round 2's outcome feeds the service availability analysis.
package workload

import (
	"errors"
	"fmt"
	"time"

	"profipy/internal/interp"
	"profipy/internal/obs"
	"profipy/internal/sandbox"
)

// Config describes how to exercise the target software.
type Config struct {
	// Entry is the workload entry function (e.g. "Workload").
	Entry string
	// Files are container paths of the sources to load, in load order.
	Files []string
	// TimeoutNS is the virtual deadline per round; expiring counts as a
	// hang (the paper's worst-case 120s experiments).
	TimeoutNS int64
	// MaxSteps bounds real work per round.
	MaxSteps int64
	// Env installs host modules and hooks on each round's interpreter
	// (the kvclient environment, for the case study).
	Env func(it *interp.Interp, c *sandbox.Container)
	// Program, when set, is the compiled form of Files: rounds execute
	// the compiled program (interp.NewRun) instead of re-parsing and
	// tree-walking the sources, and the per-round container FS reads
	// drop out of the hot loop. The campaign compiles the base file set
	// once and derives one program per experiment (mutated file only).
	Program *interp.Program
	// Engine selects the compiled program's execution engine
	// (interp.Config.Engine): "" or "bytecode" runs the lowered
	// register bytecode, "closure" the closure tree. Ignored on the
	// tree-walk path (no Program); results are byte-identical either
	// way, only speed differs.
	Engine string
	// Rounds is the number of workload rounds; 0 selects the paper's
	// two-round protocol.
	Rounds int
	// FaultFree keeps the trigger disabled in every round (used by the
	// coverage analysis pass and by golden runs).
	FaultFree bool
	// Injector, when set, is the experiment's runtime fault injector
	// table (runtimefault.Engine): it is installed as the call hook of
	// every round's interpreter and armed per round exactly like the
	// compile-time trigger (round 1 armed, later rounds disarmed). One
	// injector serves all rounds of one experiment, so activation
	// counters persist across rounds.
	Injector Injector
	// WallBudgetNS bounds the real (wall-clock) time of one round; 0
	// disables the watchdog. The virtual deadline and step budget above
	// catch hangs of well-behaved interpreted code, but a mutated
	// program can loop inside a single expensive host operation — the
	// watchdog interrupts the interpreter from outside so the round is
	// classified as a timeout instead of stalling its whole shard.
	// Watchdog firings are inherently wall-clock-dependent, so leave
	// this off for campaigns that must be byte-reproducible.
	WallBudgetNS int64
	// Metrics, when set, counts watchdog firings
	// (profipy_workload_watchdog_timeouts_total).
	Metrics *obs.Registry
	// CaptureEnv and RestoreEnv freeze and reapply whatever state Env
	// keeps in the container's env bag (the kvclient server, clock base,
	// trace spans), enabling prefix-snapshot forking. CaptureEnv returns
	// ok=false when the environment holds state it cannot capture
	// faithfully; RestoreEnv returns ok=false on shape mismatch. Leave
	// both nil for environments that keep no env-bag state. See
	// BuildPrefixes and RunForked.
	CaptureEnv func(c *sandbox.Container) (any, bool)
	RestoreEnv func(c *sandbox.Container, state any) bool
}

// Injector is a runtime fault injector table attachable to a workload:
// the interpreter call hook plus per-round arming.
type Injector interface {
	interp.CallHook
	// BeginRound arms or disarms the table for round (0-based).
	BeginRound(round int, faultEnabled bool)
}

// RoundResult is the outcome of one workload round.
type RoundResult struct {
	OK        bool   `json:"ok"`
	Crash     bool   `json:"crash"`
	Timeout   bool   `json:"timeout"`
	Exception string `json:"exception,omitempty"`
	Message   string `json:"message,omitempty"`
	VirtualNS int64  `json:"virtualNs"`
	Steps     int64  `json:"steps"`
	// Watchdog marks a timeout forced by the wall-clock watchdog
	// (Config.WallBudgetNS) rather than the virtual deadline.
	Watchdog bool `json:"watchdog,omitempty"`
}

// Failed reports whether the round ended in a service failure.
func (r RoundResult) Failed() bool { return !r.OK }

// Result is the outcome of one experiment: the per-round results plus
// the collected logs (system logs, workload logs) for data analysis.
type Result struct {
	Rounds []RoundResult     `json:"rounds"`
	Logs   map[string]string `json:"logs"`
}

// Round1 returns the fault-enabled round's result.
func (r *Result) Round1() RoundResult { return r.Rounds[0] }

// Round2 returns the fault-disabled round's result (valid when the
// two-round protocol ran).
func (r *Result) Round2() RoundResult {
	if len(r.Rounds) < 2 {
		return RoundResult{}
	}
	return r.Rounds[1]
}

// Run executes the experiment protocol in a container whose filesystem
// already holds the (mutated) target sources.
func Run(c *sandbox.Container, cfg Config) (*Result, error) {
	if cfg.Entry == "" {
		return nil, fmt.Errorf("workload: no entry function configured")
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	if err := c.Start(); err != nil {
		return nil, err
	}
	defer c.Exit()

	res := &Result{Logs: map[string]string{}}
	for i := 0; i < rounds; i++ {
		// Round 1 runs with the fault enabled, later rounds disabled.
		enabled := i == 0 && !cfg.FaultFree
		c.SetTrigger(enabled)
		if cfg.Injector != nil {
			cfg.Injector.BeginRound(i, enabled)
		}
		rr, err := runRound(c, cfg)
		if err != nil {
			return nil, err
		}
		res.Rounds = append(res.Rounds, rr)
	}
	for _, name := range c.LogNames() {
		res.Logs[name] = c.LogContents(name)
	}
	return res, nil
}

// runRound executes one workload round on a fresh interpreter; container
// state (filesystem, server, logs, contention) persists across rounds.
// With a compiled Program the round skips the parse/load front end
// entirely (compile once, run many); otherwise the sources are read from
// the container filesystem and tree-walked as before.
func runRound(c *sandbox.Container, cfg Config) (RoundResult, error) {
	icfg := interp.Config{
		DeadlineNS: cfg.TimeoutNS,
		MaxSteps:   cfg.MaxSteps,
		Stdout:     c.Log("stdout"),
		Engine:     cfg.Engine,
	}
	if cfg.Injector != nil {
		icfg.Hook = cfg.Injector
	}
	var it *interp.Interp
	if cfg.Program != nil {
		it = interp.NewRun(cfg.Program, icfg)
		if cfg.Env != nil {
			cfg.Env(it, c)
		}
		if err := it.Boot(); err != nil {
			// A program that no longer boots (unknown module, failing
			// top-level init) is an experiment infrastructure error, not
			// a target failure — same classification as a load error.
			return RoundResult{}, fmt.Errorf("workload: %w", err)
		}
	} else {
		it = interp.New(icfg)
		if cfg.Env != nil {
			cfg.Env(it, c)
		}
		for _, f := range cfg.Files {
			src, err := c.FS.Read(f)
			if err != nil {
				return RoundResult{}, fmt.Errorf("workload: missing target file %s: %w", f, err)
			}
			if err := it.LoadSource(f, src); err != nil {
				// A mutated source that no longer loads is an experiment
				// infrastructure error, not a target failure.
				return RoundResult{}, fmt.Errorf("workload: %w", err)
			}
		}
	}
	// Arm the wall-clock watchdog around the round only: Interrupt is
	// the interpreter's one cross-goroutine entry point, so a round that
	// burns real time inside a loop the virtual clock undercounts is
	// killed instead of pinning its shard worker.
	if cfg.WallBudgetNS > 0 {
		wd := time.AfterFunc(time.Duration(cfg.WallBudgetNS), it.Interrupt)
		defer wd.Stop()
	}
	_, err := it.Call(cfg.Entry)
	return classify(it, err, cfg)
}

// classify turns one round's interpreter outcome into a RoundResult;
// non-workload errors (infrastructure failures) pass through as errors.
func classify(it *interp.Interp, err error, cfg Config) (RoundResult, error) {
	rr := RoundResult{VirtualNS: it.Clock(), Steps: it.Steps()}
	switch {
	case err == nil:
		rr.OK = true
	case errors.Is(err, interp.ErrInterrupted):
		rr.Timeout = true
		rr.Watchdog = true
		rr.Message = "workload timeout (watchdog: wall-clock budget exceeded)"
		if cfg.Metrics != nil {
			cfg.Metrics.Counter("profipy_workload_watchdog_timeouts_total",
				"Experiment rounds killed by the wall-clock watchdog.").Inc()
		}
	case errors.Is(err, interp.ErrTimeout), errors.Is(err, interp.ErrSteps):
		rr.Timeout = true
		rr.Message = "workload timeout (hang)"
	default:
		var pe *interp.PanicError
		if errors.As(err, &pe) {
			rr.Crash = true
			rr.Message = err.Error()
			if exc, ok := pe.Exception(); ok {
				rr.Exception = exc.Type
			}
		} else {
			return RoundResult{}, err
		}
	}
	return rr, nil
}
