package workload

import (
	"strings"
	"testing"

	"profipy/internal/interp"
	"profipy/internal/runtimefault"
	"profipy/internal/sandbox"
)

func newContainer(files map[string][]byte) (*sandbox.Runtime, *sandbox.Container) {
	rt := sandbox.NewRuntime(sandbox.RuntimeConfig{Cores: 2, Seed: 3})
	return rt, rt.Create(sandbox.Image{Name: "t", Files: files})
}

func env(it *interp.Interp, c *sandbox.Container) { sandbox.InstallHooks(it, c) }

func TestTwoRoundProtocol(t *testing.T) {
	// A target that fails while the fault trigger is on and recovers
	// when it is off.
	src := []byte(`package main

func Workload() any {
	if __fault_enabled() {
		panic(__exc("Boom", "fault active"))
	}
	return "ok"
}`)
	_, c := newContainer(map[string][]byte{"w.go": src})
	res, err := Run(c, Config{Entry: "Workload", Files: []string{"w.go"}, Env: env})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(res.Rounds))
	}
	r1, r2 := res.Round1(), res.Round2()
	if r1.OK || !r1.Crash || r1.Exception != "Boom" {
		t.Errorf("round 1 = %+v, want Boom crash", r1)
	}
	if !r2.OK {
		t.Errorf("round 2 = %+v, want recovery once fault disabled", r2)
	}
	if c.State() != sandbox.StateExited {
		t.Errorf("container state = %v", c.State())
	}
}

// TestInjectorTwoRoundProtocol runs the runtime-injector analog of the
// two-round protocol through the real Run loop: an always fault fires
// in round 1 and stays silent in the disarmed round 2, while a
// round(2)-scoped fault does the inverse — and a FaultFree run keeps
// both silent.
func TestInjectorTwoRoundProtocol(t *testing.T) {
	src := []byte(`package main

func hooked() any { return 1 }

func Workload() any { return hooked() }`)
	mkEngine := func(when runtimefault.Trigger) *runtimefault.Engine {
		eng, err := runtimefault.NewEngine([]runtimefault.Fault{{
			Name: "rt", Site: "hooked", When: when,
			Do: runtimefault.Action{Kind: runtimefault.ActionRaise, ExcType: "Injected", Message: "m"},
		}}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	_, c := newContainer(map[string][]byte{"w.go": src})
	res, err := Run(c, Config{Entry: "Workload", Files: []string{"w.go"}, Env: env,
		Injector: mkEngine(runtimefault.Trigger{Mode: runtimefault.TriggerAlways})})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1 := res.Round1(); r1.OK || r1.Exception != "Injected" {
		t.Errorf("always fault round 1 = %+v, want injected crash", r1)
	}
	if r2 := res.Round2(); !r2.OK {
		t.Errorf("always fault round 2 = %+v, want recovery once disarmed", r2)
	}

	_, c2 := newContainer(map[string][]byte{"w.go": src})
	res, err = Run(c2, Config{Entry: "Workload", Files: []string{"w.go"}, Env: env,
		Injector: mkEngine(runtimefault.Trigger{Mode: runtimefault.TriggerRound, Round: 2})})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1 := res.Round1(); !r1.OK {
		t.Errorf("round(2) fault round 1 = %+v, want clean run", r1)
	}
	if r2 := res.Round2(); r2.OK || r2.Exception != "Injected" {
		t.Errorf("round(2) fault round 2 = %+v, want injected crash", r2)
	}

	_, c3 := newContainer(map[string][]byte{"w.go": src})
	eng := mkEngine(runtimefault.Trigger{Mode: runtimefault.TriggerRound, Round: 2})
	res, err = Run(c3, Config{Entry: "Workload", Files: []string{"w.go"}, Env: env,
		FaultFree: true, Injector: eng})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, rr := range res.Rounds {
		if !rr.OK {
			t.Errorf("fault-free round %d = %+v, want clean run", i+1, rr)
		}
	}
	if rep := eng.Report(); rep[0].Fires != 0 {
		t.Errorf("fault-free run fired: %+v", rep)
	}
}

func TestPersistentErrorStateAcrossRounds(t *testing.T) {
	// Error states from round 1 persist into round 2 via the container
	// env/filesystem (here: a leaked file), the unavailability scenario.
	src := []byte(`package main

import "state"

func Workload() any {
	if __fault_enabled() {
		state.Corrupt()
		panic(__exc("Boom", "corrupting"))
	}
	if state.IsCorrupt() {
		panic(__exc("StillBroken", "state persisted"))
	}
	return "ok"
}`)
	_, c := newContainer(map[string][]byte{"w.go": src})
	cfg := Config{Entry: "Workload", Files: []string{"w.go"}, Env: func(it *interp.Interp, ctr *sandbox.Container) {
		sandbox.InstallHooks(it, ctr)
		mod := interp.NewModule("state")
		mod.Func("Corrupt", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
			ctr.PutEnv("corrupt", true)
			return nil, nil
		})
		mod.Func("IsCorrupt", func(it *interp.Interp, args []interp.Value) (interp.Value, error) {
			_, ok := ctr.GetEnv("corrupt")
			return ok, nil
		})
		it.RegisterModule(mod)
	}}
	res, err := Run(c, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Round2().OK {
		t.Error("round 2 should observe the persisted error state")
	}
	if res.Round2().Exception != "StillBroken" {
		t.Errorf("round 2 exception = %q", res.Round2().Exception)
	}
}

func TestTimeoutDetection(t *testing.T) {
	src := []byte(`package main

func Workload() any {
	if __fault_enabled() {
		for {
		}
	}
	return "ok"
}`)
	_, c := newContainer(map[string][]byte{"w.go": src})
	res, err := Run(c, Config{
		Entry: "Workload", Files: []string{"w.go"}, Env: env,
		TimeoutNS: 50_000_000, // 50ms virtual
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Round1().Timeout {
		t.Errorf("round 1 = %+v, want timeout", res.Round1())
	}
	if !res.Round2().OK {
		t.Errorf("round 2 = %+v, want ok", res.Round2())
	}
}

func TestLogsCollected(t *testing.T) {
	src := []byte(`package main

func Workload() any {
	__log("client", "ERROR something")
	return "ok"
}`)
	_, c := newContainer(map[string][]byte{"w.go": src})
	res, err := Run(c, Config{Entry: "Workload", Files: []string{"w.go"}, Env: env})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(res.Logs["client"], "ERROR something") {
		t.Errorf("logs = %v", res.Logs)
	}
}

func TestMissingEntryAndFiles(t *testing.T) {
	_, c := newContainer(map[string][]byte{})
	if _, err := Run(c, Config{Files: []string{"w.go"}}); err == nil {
		t.Error("missing entry should fail")
	}
	_, c2 := newContainer(map[string][]byte{})
	if _, err := Run(c2, Config{Entry: "W", Files: []string{"missing.go"}}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestUnparseableMutantIsInfraError(t *testing.T) {
	_, c := newContainer(map[string][]byte{"w.go": []byte("not valid go")})
	if _, err := Run(c, Config{Entry: "W", Files: []string{"w.go"}, Env: env}); err == nil {
		t.Error("unparseable source should surface as an infrastructure error")
	}
}

func TestSingleRoundConfig(t *testing.T) {
	src := []byte(`package main

func Workload() any {
	return "ok"
}`)
	_, c := newContainer(map[string][]byte{"w.go": src})
	res, err := Run(c, Config{Entry: "Workload", Files: []string{"w.go"}, Env: env, Rounds: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rounds) != 1 {
		t.Errorf("rounds = %d, want 1", len(res.Rounds))
	}
	if r2 := res.Round2(); r2.OK {
		t.Errorf("round 2 of single-round run should be zero value, got %+v", r2)
	}
}

func TestVirtualTimeReported(t *testing.T) {
	src := []byte(`package main

func Workload() any {
	__delay(5000)
	return "ok"
}`)
	_, c := newContainer(map[string][]byte{"w.go": src})
	res, err := Run(c, Config{Entry: "Workload", Files: []string{"w.go"}, Env: env})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Round1().VirtualNS < 5_000_000_000 {
		t.Errorf("virtual time = %d, want >= 5s", res.Round1().VirtualNS)
	}
}
