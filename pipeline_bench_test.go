// Streaming-pipeline benchmarks: campaign record throughput through the
// Local vs Sharded executors, and the online aggregator's per-record
// cost. TestEmitPipelineBenchJSON (gated by PROFIPY_BENCH_PIPELINE_JSON)
// writes the machine-readable BENCH_pipeline.json consumed by
// `make bench-pipeline` and the CI bench job.
package profipy

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"profipy/internal/analysis"
	"profipy/internal/executor"
	"profipy/internal/kvclient"
	"profipy/internal/obs"
	"profipy/internal/resultstore"
)

// benchPipelineCampaign runs the §V-A campaign under an executor and reports
// how many experiment records flowed through the pipeline. A non-nil
// registry instruments the campaign and executor exactly as the saas
// layer does, so the -metrics engine variants measure observability
// overhead against their bare twins.
func benchPipelineCampaign(tb testing.TB, ex executor.Executor, reg *obs.Registry) int {
	tb.Helper()
	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
	c := kvclient.CampaignA(rt, 101)
	if reg != nil {
		c.Metrics = reg
		if sh, ok := ex.(executor.Sharded); ok {
			sh.Reg = reg
			ex = sh
		}
		if lo, ok := ex.(executor.Local); ok {
			lo.Reg = reg
			ex = lo
		}
	}
	c.Executor = ex
	c.DiscardRecords = true // measure the streaming path, not slice growth
	records := 0
	c.Sink = executor.SinkFunc(func(idx int, rec analysis.Record) { records++ })
	if _, err := c.Run(); err != nil {
		tb.Fatalf("campaign: %v", err)
	}
	return records
}

// pipelineEngines are the executor geometries the benchmarks compare.
// The -metrics variant duplicates one geometry with full campaign +
// executor instrumentation attached; comparing it against its bare twin
// in BENCH_pipeline.json is the observability-overhead gate (<2%
// records/s budget).
var pipelineEngines = []struct {
	name string
	ex   executor.Executor
	reg  *obs.Registry
}{
	{"local", executor.Local{Workers: 3}, nil},
	{"sharded-2x2", executor.Sharded{Shards: 2, Workers: 2}, nil},
	{"sharded-4x1", executor.Sharded{Shards: 4}, nil},
	{"sharded-8x2", executor.Sharded{Shards: 8, Workers: 2}, nil},
	{"sharded-2x2-metrics", executor.Sharded{Shards: 2, Workers: 2}, obs.NewRegistry()},
}

// BenchmarkPipelineExecutors measures end-to-end campaign record
// throughput per engine.
func BenchmarkPipelineExecutors(b *testing.B) {
	for _, eng := range pipelineEngines {
		b.Run(eng.name, func(b *testing.B) {
			records := 0
			for i := 0; i < b.N; i++ {
				records = benchPipelineCampaign(b, eng.ex, eng.reg)
			}
			b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// benchStoreCampaign runs one §V-A campaign streaming its records into
// a disk-backed result store under the given campaign ID, and — when
// journal is set — write-ahead journaling the job lifecycle exactly as
// the saas layer does (queued and running before the run, terminal
// after; each an fsync'd append). The journal-on vs journal-off pair in
// BENCH_pipeline.json is the durability-overhead gate: crash
// consistency must stay within a few percent of records/s.
func benchStoreCampaign(tb testing.TB, s *resultstore.Store, id string, journal bool) int {
	tb.Helper()
	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
	c := kvclient.CampaignA(rt, 101)
	c.DiscardRecords = true
	if journal {
		for _, state := range []string{resultstore.JournalQueued, resultstore.JournalRunning} {
			if err := s.AppendJournal(resultstore.JournalEntry{Job: id, State: state, Campaign: id, TimeMS: 1}); err != nil {
				tb.Fatal(err)
			}
		}
	}
	w, err := s.StartCampaign(resultstore.Meta{ID: id, Project: "bench"})
	if err != nil {
		tb.Fatal(err)
	}
	records := 0
	c.Sink = executor.SinkFunc(func(idx int, rec analysis.Record) {
		records++
		_ = w.Append(rec)
	})
	if _, err := c.Run(); err != nil {
		tb.Fatalf("campaign: %v", err)
	}
	if err := w.Finish(resultstore.StatusDone, nil, nil); err != nil {
		tb.Fatal(err)
	}
	if journal {
		if err := s.AppendJournal(resultstore.JournalEntry{Job: id, State: resultstore.JournalDone, TimeMS: 2}); err != nil {
			tb.Fatal(err)
		}
	}
	return records
}

// BenchmarkPipelineDurability compares persisted-campaign throughput
// with and without the write-ahead job journal.
func BenchmarkPipelineDurability(b *testing.B) {
	for _, journal := range []bool{false, true} {
		name := "store-nojournal"
		if journal {
			name = "store-journal"
		}
		b.Run(name, func(b *testing.B) {
			s, err := resultstore.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			records := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				records = benchStoreCampaign(b, s, fmt.Sprintf("camp-%d", i), journal)
			}
			b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// loadGoldenRecords reads one golden campaign record fixture.
func loadGoldenRecords(tb testing.TB, name string) []analysis.Record {
	tb.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden", name+".json"))
	if err != nil {
		tb.Fatalf("golden fixture: %v", err)
	}
	var recs []analysis.Record
	if err := json.Unmarshal(data, &recs); err != nil {
		tb.Fatal(err)
	}
	return recs
}

// BenchmarkAggregatorAdd measures the online aggregator's per-record
// cost over the mixed runtime campaign's records (the richest shape:
// injections, failures, log classification).
func BenchmarkAggregatorAdd(b *testing.B) {
	recs := loadGoldenRecords(b, "campaign-r")
	cfg := kvclient.AnalysisConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err := analysis.NewAggregator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, rec := range recs {
			agg.Add(rec)
		}
		if agg.Report().Total != len(recs) {
			b.Fatal("bad aggregate")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(recs)), "ns/record")
}

// BenchmarkAggregatorMerge measures shard-merge cost.
func BenchmarkAggregatorMerge(b *testing.B) {
	recs := loadGoldenRecords(b, "campaign-r")
	cfg := kvclient.AnalysisConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		const shards = 8
		root, err := analysis.NewAggregator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < shards; s++ {
			agg, err := analysis.NewAggregator(cfg)
			if err != nil {
				b.Fatal(err)
			}
			lo, hi := executor.Shard(len(recs), shards, s)
			for _, rec := range recs[lo:hi] {
				agg.Add(rec)
			}
			root.Merge(agg)
		}
		if root.Report().Total != len(recs) {
			b.Fatal("bad merge")
		}
	}
}

// pipelineBenchResult is one row of BENCH_pipeline.json.
type pipelineBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	RecordsPerS float64 `json:"recordsPerSec,omitempty"`
	NsPerRecord float64 `json:"nsPerRecord,omitempty"`
}

// TestEmitPipelineBenchJSON measures record throughput through both
// executors and the aggregator's per-record cost, writing the results
// to the path in PROFIPY_BENCH_PIPELINE_JSON (skipped otherwise).
// `make bench-pipeline` and the CI bench job run it and archive the
// artifact next to BENCH_exec.json.
func TestEmitPipelineBenchJSON(t *testing.T) {
	path := os.Getenv("PROFIPY_BENCH_PIPELINE_JSON")
	if path == "" {
		t.Skip("set PROFIPY_BENCH_PIPELINE_JSON=<path> to emit the pipeline benchmark artifact")
	}

	var rows []pipelineBenchResult
	for _, eng := range pipelineEngines {
		records := 0
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				records = benchPipelineCampaign(b, eng.ex, eng.reg)
			}
		})
		row := pipelineBenchResult{
			Name:        "campaign-records/" + eng.name,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		if br.NsPerOp() > 0 {
			row.RecordsPerS = float64(records) * 1e9 / float64(br.NsPerOp())
		}
		rows = append(rows, row)
	}

	// Durability A/B: the same persisted campaign with and without the
	// write-ahead job journal, so the bench artifact carries the cost of
	// crash consistency as its own comparable pair of rows.
	campSeq := 0
	for _, journal := range []bool{false, true} {
		name := "store-nojournal"
		if journal {
			name = "store-journal"
		}
		s, err := resultstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		records := 0
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				records = benchStoreCampaign(b, s, fmt.Sprintf("camp-%d", campSeq), journal)
				campSeq++
			}
		})
		_ = s.Close()
		row := pipelineBenchResult{
			Name:        "campaign-records/" + name,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		if br.NsPerOp() > 0 {
			row.RecordsPerS = float64(records) * 1e9 / float64(br.NsPerOp())
		}
		rows = append(rows, row)
	}

	recs := loadGoldenRecords(t, "campaign-r")
	cfg := kvclient.AnalysisConfig()
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			agg, err := analysis.NewAggregator(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, rec := range recs {
				agg.Add(rec)
			}
			if agg.Report().Total != len(recs) {
				b.Fatal("bad aggregate")
			}
		}
	})
	aggRow := pipelineBenchResult{
		Name:        "aggregator-add",
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}
	if len(recs) > 0 {
		aggRow.NsPerRecord = float64(br.NsPerOp()) / float64(len(recs))
	}
	rows = append(rows, aggRow)

	out := struct {
		Benchmarks []pipelineBenchResult `json:"benchmarks"`
	}{Benchmarks: rows}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", path, data)
}

// TestCampaignMemoryFootprintNote is documentation-in-code for the
// O(shards) claim: with DiscardRecords the campaign result carries no
// record slice however many experiments ran.
func TestCampaignMemoryFootprintNote(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
	c := kvclient.CampaignA(rt, 101)
	c.DiscardRecords = true
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != nil {
		t.Fatalf("DiscardRecords kept %d records", len(res.Records))
	}
	if res.Report == nil || res.Report.Total == 0 {
		t.Fatal("report must still aggregate online")
	}
	_ = fmt.Sprintf("%d", res.Report.Total)
}
