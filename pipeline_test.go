// Streaming-pipeline equivalence tests: the §V campaigns must produce
// byte-identical records and reports whichever execution engine runs
// them — the Local N−1 pool or the Sharded executor at any shard/worker
// count — and whether records are collected, streamed to a sink, or
// discarded for O(shards) memory. Experiment seeds derive from plan
// indices, never from scheduling, which is what makes this hold.
package profipy

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"profipy/internal/analysis"
	"profipy/internal/campaign"
	"profipy/internal/executor"
	"profipy/internal/kvclient"
)

func runWithExecutor(t *testing.T, build func(rt *Runtime, seed int64) *campaign.Campaign,
	seed int64, ex executor.Executor) *campaign.Result {
	t.Helper()
	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
	c := build(rt, seed)
	c.Executor = ex
	res, err := c.Run()
	if err != nil {
		t.Fatalf("campaign (%v): %v", ex, err)
	}
	return res
}

// TestShardedCampaignMatchesGolden runs every golden campaign through
// the Sharded executor at several shard geometries and compares the
// full record JSON byte-for-byte against the same fixtures the default
// Local path is pinned to.
func TestShardedCampaignMatchesGolden(t *testing.T) {
	executors := []executor.Executor{
		executor.Sharded{Shards: 1},
		executor.Sharded{Shards: 2, Workers: 2},
		executor.Sharded{Shards: 3},
		executor.Sharded{Shards: 7, Workers: 3},
	}
	for _, gc := range goldenCampaigns {
		t.Run(gc.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", gc.name+".json"))
			if err != nil {
				t.Fatalf("missing golden fixture: %v", err)
			}
			for _, ex := range executors {
				res := runWithExecutor(t, gc.build, gc.seed, ex)
				got, err := json.MarshalIndent(res.Records, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				if !bytes.Equal(got, want) {
					t.Errorf("%s: records drifted from golden fixture", ex.Name())
				}
			}
		})
	}
}

// TestPipelineReportIdenticalAcrossEngines asserts the online
// aggregator closes the loop: reports (not just records) are
// byte-identical across engines and shard counts.
func TestPipelineReportIdenticalAcrossEngines(t *testing.T) {
	base := runWithExecutor(t, kvclient.CampaignR, 404, executor.Local{Workers: 3})
	want, err := json.Marshal(base.Report)
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range []executor.Executor{
		executor.Local{Workers: 1},
		executor.Sharded{Shards: 5, Workers: 2},
	} {
		res := runWithExecutor(t, kvclient.CampaignR, 404, ex)
		got, err := json.Marshal(res.Report)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: report drifted", ex.Name())
		}
	}
}

// TestDiscardRecordsStreamsToSink runs a campaign with record
// accumulation disabled: Result.Records must be nil, every record must
// still reach the sink exactly once, and the report must match the
// collected baseline byte-for-byte.
func TestDiscardRecordsStreamsToSink(t *testing.T) {
	baseline := runWithExecutor(t, kvclient.CampaignA, 101, nil)
	wantReport, err := json.Marshal(baseline.Report)
	if err != nil {
		t.Fatal(err)
	}

	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
	c := kvclient.CampaignA(rt, 101)
	c.DiscardRecords = true
	c.Executor = executor.Sharded{Shards: 4, Workers: 2}
	var mu sync.Mutex
	streamed := map[int]analysis.Record{}
	c.Sink = executor.SinkFunc(func(idx int, rec analysis.Record) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := streamed[idx]; dup {
			t.Errorf("record %d delivered twice", idx)
		}
		streamed[idx] = rec
	})
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != nil {
		t.Errorf("DiscardRecords left %d records materialized", len(res.Records))
	}
	if len(streamed) != len(baseline.Records) {
		t.Fatalf("sink saw %d records, want %d", len(streamed), len(baseline.Records))
	}
	ordered := make([]analysis.Record, len(streamed))
	for idx, rec := range streamed {
		ordered[idx] = rec
	}
	gotRecs, err := json.Marshal(ordered)
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, err := json.Marshal(baseline.Records)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotRecs, wantRecs) {
		t.Error("streamed records drifted from the collected baseline")
	}
	gotReport, err := json.Marshal(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotReport, wantReport) {
		t.Error("aggregated report drifted from the collected baseline")
	}
}
