// Package profipy is a programmable software fault injection library — a
// Go reproduction of "ProFIPy: Programmable Software Fault Injection
// as-a-Service" (Cotroneo, De Simone, Liguori, Natella — DSN 2020).
//
// Users describe software fault models in a domain-specific language:
//
//	change {
//		$BLOCK{tag=b1; stmts=1,*}
//		$CALL{name=Delete*}(...)
//		$BLOCK{tag=b2; stmts=1,*}
//	} into {
//		$BLOCK{tag=b1}
//		$BLOCK{tag=b2}
//	}
//
// The library compiles specifications into meta-models, scans target
// source for injection points, generates mutated versions wrapped in a
// run-time trigger, executes each experiment for two workload rounds in
// an isolated container sandbox (at most N−1 in parallel), and analyses
// the outcomes: failure modes, service availability, failure logging and
// failure propagation.
//
// The complete workflow is driven through Campaign; the individual phases
// are available as Compile, Scan, Mutate and Instrument for custom
// pipelines. See examples/ for runnable end-to-end scenarios and
// EXPERIMENTS.md for the paper-reproduction results.
package profipy

import (
	"profipy/internal/analysis"
	"profipy/internal/campaign"
	"profipy/internal/dsl"
	"profipy/internal/faultmodel"
	"profipy/internal/mutator"
	"profipy/internal/pattern"
	"profipy/internal/plan"
	"profipy/internal/runtimefault"
	"profipy/internal/sandbox"
	"profipy/internal/scanner"
	"profipy/internal/trace"
	"profipy/internal/workload"
)

// Core workflow types, re-exported from the implementation packages.
type (
	// Spec is a named DSL bug specification with a fault-type label.
	Spec = faultmodel.Spec
	// Model is a named, saveable collection of specs.
	Model = faultmodel.Model
	// MetaModel is a compiled specification.
	MetaModel = pattern.MetaModel
	// InjectionPoint locates one match of a spec in target source.
	InjectionPoint = scanner.InjectionPoint
	// Plan is the set of experiments selected from the scan.
	Plan = plan.Plan
	// Campaign drives the full Scan -> Execution -> Analysis workflow.
	Campaign = campaign.Campaign
	// CampaignResult is the outcome of a campaign run.
	CampaignResult = campaign.Result
	// Report carries the data-analysis results.
	Report = analysis.Report
	// Record is one completed experiment.
	Record = analysis.Record
	// FailureClass is a user-defined failure mode (log regex).
	FailureClass = analysis.FailureClass
	// AnalysisConfig parameterises failure classification.
	AnalysisConfig = analysis.Config
	// WorkloadConfig describes how experiments exercise the target.
	WorkloadConfig = workload.Config
	// ExperimentResult is the outcome of one two-round experiment.
	ExperimentResult = workload.Result
	// Runtime is the container runtime substitute.
	Runtime = sandbox.Runtime
	// RuntimeConfig sizes the simulated host.
	RuntimeConfig = sandbox.RuntimeConfig
	// Image is a container template.
	Image = sandbox.Image
	// Container is one isolated experiment environment.
	Container = sandbox.Container
	// TraceRecorder collects spans for failure visualization.
	TraceRecorder = trace.Recorder
	// Span is one recorded API invocation.
	Span = trace.Span
	// RuntimeFault is one runtime trigger-based fault: site selector,
	// trigger and action, fired by an injector engine while the program
	// runs (no source mutation).
	RuntimeFault = runtimefault.Fault
	// RuntimeTrigger decides when an armed runtime fault fires.
	RuntimeTrigger = runtimefault.Trigger
	// RuntimeAction is what a firing runtime fault does.
	RuntimeAction = runtimefault.Action
	// InjectorEngine is a per-experiment runtime injector table,
	// attachable to a workload through WorkloadConfig.Injector.
	InjectorEngine = runtimefault.Engine
)

// NewInjectorEngine builds a runtime injector table whose trigger and
// corruption randomness flows from one seeded PRNG: identical faults,
// seed and workload produce identical injection decisions on both the
// compiled and tree-walk execution paths.
func NewInjectorEngine(faults []RuntimeFault, seed int64) (*InjectorEngine, error) {
	return runtimefault.NewEngine(faults, seed)
}

// Compile compiles a DSL bug specification into a meta-model.
func Compile(name, dslText string) (*MetaModel, error) {
	return dsl.Compile(name, dslText)
}

// Scan finds every injection point for the given faultload in a project
// (filename -> source).
func Scan(files map[string][]byte, specs []Spec) (*Plan, error) {
	return plan.Build(files, specs)
}

// MutateOptions controls mutation generation.
type MutateOptions struct {
	// Triggered wraps the faulty code in the run-time trigger branch so
	// the fault can be enabled/disabled during execution (required for
	// the two-round availability analysis).
	Triggered bool
}

// Mutation is a generated fault-injected source version.
type Mutation struct {
	// Source is the full mutated file.
	Source []byte
	// Original and Mutated are the replaced / injected snippets.
	Original string
	Mutated  string
}

// Mutate generates the mutated version of a source file for one
// injection point.
func Mutate(src []byte, spec Spec, point InjectionPoint, opts MutateOptions) (*Mutation, error) {
	mm, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	res, err := mutator.Apply(point.File, src, mm, point, mutator.Options{Triggered: opts.Triggered})
	if err != nil {
		return nil, err
	}
	return &Mutation{Source: res.Source, Original: res.Original, Mutated: res.Mutated}, nil
}

// Instrument inserts coverage hooks at the given injection points of a
// file (the fault-free coverage pass uses the result).
func Instrument(filename string, src []byte, points []InjectionPoint) ([]byte, error) {
	return mutator.Instrument(filename, src, points)
}

// NewRuntime creates a container runtime for the given host shape.
func NewRuntime(cfg RuntimeConfig) *Runtime {
	return sandbox.NewRuntime(cfg)
}

// PredefinedModels returns the registry of built-in fault models
// (G-SWFIT and the exception/resource extras of §III).
func PredefinedModels() *faultmodel.Registry {
	return faultmodel.NewRegistry()
}

// Timeline renders recorded spans as an ASCII timeline (the failure
// visualization of §IV-D).
func Timeline(spans []Span, width int) string {
	return trace.Timeline(spans, width)
}
