package profipy

import (
	"strings"
	"testing"
)

const sampleTarget = `package svc

func Teardown(c *Conn, node string) {
	flush(c)
	DeletePort(c, node)
	notify(c)
}
`

const sampleSpec = `
change {
	$BLOCK{tag=b1; stmts=1,*}
	$CALL{name=Delete*}(...)
	$BLOCK{tag=b2; stmts=1,*}
} into {
	$BLOCK{tag=b1}
	$BLOCK{tag=b2}
}`

func TestFacadeCompileScanMutate(t *testing.T) {
	if _, err := Compile("MFC", sampleSpec); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	specs := []Spec{{Name: "MFC", Type: "MFC", DSL: sampleSpec}}
	files := map[string][]byte{"svc.go": []byte(sampleTarget)}
	pl, err := Scan(files, specs)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if pl.Len() != 1 {
		t.Fatalf("points = %d, want 1", pl.Len())
	}
	mut, err := Mutate(files["svc.go"], specs[0], pl.Points[0], MutateOptions{Triggered: true})
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if !strings.Contains(string(mut.Source), "__fault_enabled()") {
		t.Error("triggered mutation missing trigger branch")
	}
	if !strings.Contains(mut.Original, "DeletePort") {
		t.Errorf("original snippet = %q", mut.Original)
	}
}

func TestFacadeInstrument(t *testing.T) {
	specs := []Spec{{Name: "MFC", Type: "MFC", DSL: sampleSpec}}
	files := map[string][]byte{"svc.go": []byte(sampleTarget)}
	pl, err := Scan(files, specs)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	out, err := Instrument("svc.go", files["svc.go"], pl.Points)
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	if !strings.Contains(string(out), "__cover(") {
		t.Error("instrumented source missing coverage hook")
	}
}

func TestFacadePredefinedModels(t *testing.T) {
	reg := PredefinedModels()
	m, ok := reg.Get("gswfit")
	if !ok {
		t.Fatal("gswfit model missing")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("gswfit validate: %v", err)
	}
}

func TestFacadeTimeline(t *testing.T) {
	out := Timeline([]Span{{Name: "get", Component: "c", StartNS: 0, EndNS: 10}}, 30)
	if !strings.Contains(out, "c/get") {
		t.Errorf("timeline = %q", out)
	}
}

func TestFacadeRuntime(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{Cores: 4})
	if got := rt.MaxParallel(Image{}); got != 3 {
		t.Errorf("MaxParallel = %d, want 3 (N-1)", got)
	}
}
