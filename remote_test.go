// Distributed-execution regression tests: the golden campaigns run
// through the full remote path — fleet coordinator behind a real HTTP
// server, worker agents pulling shard leases over the wire — and their
// records are compared byte-for-byte against the same fixtures the
// in-process engines are held to. Chaos variants kill workers
// mid-shard and assert that lease expiry, re-dispatch and idempotent
// ingestion reproduce the exact same bytes.
package profipy

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"profipy/internal/campaign"
	"profipy/internal/executor"
	"profipy/internal/fleet"
	"profipy/internal/kvclient"
	"profipy/internal/obs"
	"profipy/internal/remote"
	"profipy/internal/worker"
)

// remoteSpec serializes a campaign the way the SaaS layer does:
// everything a worker needs to rebuild the execution context, minus
// the plan fields the campaign workflow fills in via SetPlanContext.
func remoteSpec(c *campaign.Campaign) remote.CampaignSpec {
	return remote.CampaignSpec{
		Name:          c.Name,
		Files:         c.Files,
		ScanFiles:     c.ScanFiles,
		Faultload:     c.Faultload,
		Entry:         c.Workload.Entry,
		WorkloadFiles: c.Workload.Files,
		TimeoutNS:     c.Workload.TimeoutNS,
		MaxSteps:      c.Workload.MaxSteps,
		WallBudgetNS:  c.Workload.WallBudgetNS,
		Rounds:        c.Workload.Rounds,
		EnvName:       "kvclient",
		ImageName:     c.Image.Name,
		ImageMemMB:    c.Image.MemMB,
		ImageIOMBps:   c.Image.IOMBps,
		Seed:          c.Seed,
		SampleN:       c.SampleN,
		ReducePlan:    c.ReducePlan,
		TreeWalk:      c.TreeWalk,
		Engine:        c.Engine,
	}
}

// runRemote executes one golden campaign through the distributed path
// with the given worker fleet and returns the canonical record bytes,
// each worker's Run error and the metrics registry for assertions.
// WaitForWorkers is set whenever the fleet is non-empty, so nothing
// silently falls back to in-process execution; workers that die are
// still covered, because lease expiry re-dispatches to the survivors
// (or, with none left, WaitForWorkers is left off by the caller).
func runRemote(t *testing.T, build func(rt *Runtime, seed int64) *campaign.Campaign,
	seed int64, ttl time.Duration, wait bool, workers []worker.Config) ([]byte, []error, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	coord := fleet.New(fleet.Config{LeaseTTL: ttl, Reg: reg})
	mux := http.NewServeMux()
	coord.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i := range workers {
		cfg := workers[i]
		cfg.Server = ts.URL
		if cfg.Poll == 0 {
			cfg.Poll = 5 * time.Millisecond
		}
		if cfg.Parallel == 0 {
			cfg.Parallel = 2
		}
		ag := worker.New(cfg)
		wg.Add(1)
		go func(i int) { defer wg.Done(); errs[i] = ag.Run(ctx) }(i)
	}

	// Let every worker register before the campaign starts, so a fast
	// in-process fallback can't race the fleet out of its shards.
	for deadline := time.Now().Add(5 * time.Second); coord.LiveWorkers() < len(workers); {
		if time.Now().After(deadline) {
			t.Fatalf("workers failed to register: %d/%d live", coord.LiveWorkers(), len(workers))
		}
		time.Sleep(time.Millisecond)
	}

	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
	c := build(rt, seed)
	c.Executor = &executor.Remote{
		Coord:          coord,
		CampaignID:     "e2e-" + t.Name(),
		Spec:           remoteSpec(c),
		Shards:         5,
		LocalWorkers:   3,
		WaitForWorkers: wait,
		Reg:            reg,
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("remote campaign: %v", err)
	}
	cancel()
	wg.Wait()
	data, err := json.MarshalIndent(res.Records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n'), errs, reg
}

func goldenFixture(t *testing.T, name string) []byte {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".json"))
	if err != nil {
		t.Fatalf("missing golden fixture (run `go test -run TestGoldenCampaignRecords -update .`): %v", err)
	}
	return want
}

// metricValue scrapes one sample from the registry's text exposition.
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
			if err != nil {
				t.Fatalf("parse %s: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// TestRemoteGoldenRecords runs golden campaigns through real HTTP
// worker fleets of increasing size and demands byte-identical records:
// shard geometry, worker count and batch boundaries must leave no
// trace in the output.
func TestRemoteGoldenRecords(t *testing.T) {
	cases := []struct {
		name    string
		build   func(rt *Runtime, seed int64) *campaign.Campaign
		seed    int64
		workers int
	}{
		{"campaign-a", kvclient.CampaignA, 101, 1},
		{"campaign-a", kvclient.CampaignA, 101, 2},
		{"campaign-a", kvclient.CampaignA, 101, 4},
		{"campaign-r", kvclient.CampaignR, 404, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/workers="+string(rune('0'+tc.workers)), func(t *testing.T) {
			t.Parallel()
			workers := make([]worker.Config, tc.workers)
			for i := range workers {
				workers[i] = worker.Config{Name: "w", BatchSize: 3}
			}
			got, errs, _ := runRemote(t, tc.build, tc.seed, 10*time.Second, true, workers)
			for i, err := range errs {
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("worker %d: %v", i, err)
				}
			}
			if want := goldenFixture(t, tc.name); !bytes.Equal(got, want) {
				t.Errorf("remote records drifted from golden fixture (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestRemoteChaosKillMidShard kills one of two workers mid-shard via
// the chaos hook: it stops heartbeating and abandons its lease without
// completing. The lease must expire, the shard must be re-dispatched
// to the survivor and the final records must still match the golden
// fixture byte-for-byte — re-execution only fills holes, never
// duplicates or corrupts.
func TestRemoteChaosKillMidShard(t *testing.T) {
	workers := []worker.Config{
		// The victim polls fastest so it grabs the first lease, then
		// dies after four records — mid-shard (campaign A shards hold
		// five or six experiments).
		{Name: "victim", BatchSize: 2, Poll: time.Millisecond, KillAfterRecords: 4},
		{Name: "survivor", BatchSize: 3, Poll: 10 * time.Millisecond},
	}
	got, errs, reg := runRemote(t, kvclient.CampaignA, 101, 400*time.Millisecond, true, workers)
	if !errors.Is(errs[0], worker.ErrKilled) {
		t.Errorf("victim returned %v, want ErrKilled", errs[0])
	}
	if errs[1] != nil && !errors.Is(errs[1], context.Canceled) {
		t.Errorf("survivor: %v", errs[1])
	}
	if want := goldenFixture(t, "campaign-a"); !bytes.Equal(got, want) {
		t.Errorf("records after chaos drifted from golden fixture (%d vs %d bytes)", len(got), len(want))
	}
	if exp := metricValue(t, reg, "profipy_fleet_lease_expiries_total"); exp == 0 {
		t.Errorf("expected at least one lease expiry after killing the victim")
	}
	if rd := metricValue(t, reg, "profipy_fleet_shard_redispatch_total"); rd == 0 {
		t.Errorf("expected at least one shard re-dispatch after killing the victim")
	}
}

// TestRemoteFleetDiesCompletely kills the only worker mid-shard with
// WaitForWorkers off: once its lease expires the control plane must
// degrade gracefully and finish every remaining shard in-process,
// still byte-identical to the fixture.
func TestRemoteFleetDiesCompletely(t *testing.T) {
	workers := []worker.Config{
		{Name: "victim", BatchSize: 2, Poll: time.Millisecond, KillAfterRecords: 4},
	}
	got, errs, _ := runRemote(t, kvclient.CampaignA, 101, 400*time.Millisecond, false, workers)
	if !errors.Is(errs[0], worker.ErrKilled) {
		t.Errorf("victim returned %v, want ErrKilled", errs[0])
	}
	if want := goldenFixture(t, "campaign-a"); !bytes.Equal(got, want) {
		t.Errorf("records after total fleet loss drifted from golden fixture (%d vs %d bytes)", len(got), len(want))
	}
}

// TestRemoteNoWorkersFallsBackLocal runs the distributed engine with an
// empty fleet: Run must claim every shard eagerly and execute
// in-process, producing the exact fixture bytes — a fleet of zero is
// just Local with extra bookkeeping.
func TestRemoteNoWorkersFallsBackLocal(t *testing.T) {
	got, _, _ := runRemote(t, kvclient.CampaignA, 101, time.Second, false, nil)
	if want := goldenFixture(t, "campaign-a"); !bytes.Equal(got, want) {
		t.Errorf("local-fallback records drifted from golden fixture (%d vs %d bytes)", len(got), len(want))
	}
}
