// Crash-resume regression tests: a campaign seeded with records from a
// previous (interrupted) run must execute only the missing experiments
// and still produce records and a report byte-identical to one
// uninterrupted run. This is the engine-level contract behind the
// control plane's restart recovery: because experiment seeds derive
// from plan indices, re-executing any subset reproduces the same bytes,
// and the aggregator folds replayed and fresh records commutatively.
package profipy

import (
	"bytes"
	"encoding/json"
	"testing"

	"profipy/internal/analysis"
	"profipy/internal/campaign"
	"profipy/internal/executor"
	"profipy/internal/kvclient"
)

// runCampaignA runs the §V-A campaign with optional resume records and
// an executor override, returning the result plus how many experiments
// actually executed (reached the record sink).
func runCampaignA(t *testing.T, exec executor.Executor, resume []analysis.Record) (*campaign.Result, int) {
	t.Helper()
	rt := NewRuntime(RuntimeConfig{Cores: 4, Seed: 20})
	c := kvclient.CampaignA(rt, 101)
	c.Executor = exec
	c.Resume = resume
	executed := 0
	c.Sink = executor.SinkFunc(func(idx int, rec analysis.Record) { executed++ })
	res, err := c.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	return res, executed
}

func reportJSON(t *testing.T, res *campaign.Result) []byte {
	t.Helper()
	data, err := json.MarshalIndent(res.Report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func recordsJSON(t *testing.T, res *campaign.Result) []byte {
	t.Helper()
	data, err := json.MarshalIndent(res.Records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestResumeProducesByteIdenticalResults(t *testing.T) {
	full, fullExecuted := runCampaignA(t, nil, nil)
	if fullExecuted != len(full.Records) || fullExecuted == 0 {
		t.Fatalf("uninterrupted run executed %d of %d", fullExecuted, len(full.Records))
	}
	wantReport := reportJSON(t, full)
	wantRecords := recordsJSON(t, full)

	// Interrupt points: one record in, roughly half, all but one, all.
	n := len(full.Records)
	for _, k := range []int{1, n / 2, n - 1, n} {
		engines := map[string]executor.Executor{
			"local":   nil,
			"sharded": executor.Sharded{Shards: 3, Workers: 2},
		}
		for name, exec := range engines {
			resume := append([]analysis.Record(nil), full.Records[:k]...)
			res, executed := runCampaignA(t, exec, resume)
			if res.Replayed != k {
				t.Fatalf("%s k=%d: replayed %d", name, k, res.Replayed)
			}
			if executed != n-k {
				t.Fatalf("%s k=%d: executed %d, want %d (re-executed recorded indices?)",
					name, k, executed, n-k)
			}
			if got := reportJSON(t, res); !bytes.Equal(got, wantReport) {
				t.Fatalf("%s k=%d: resumed report differs from uninterrupted run", name, k)
			}
			if got := recordsJSON(t, res); !bytes.Equal(got, wantRecords) {
				t.Fatalf("%s k=%d: resumed records differ from uninterrupted run", name, k)
			}
			if res.Mutated != full.Mutated || res.Injected != full.Injected {
				t.Fatalf("%s k=%d: kind counts %d/%d, want %d/%d",
					name, k, res.Mutated, res.Injected, full.Mutated, full.Injected)
			}
		}
	}
}

// TestResumeIgnoresForeignRecords feeds the campaign records whose
// injection points are not in its plan (a different campaign's store
// read back by mistake): they must be ignored, and the run must still
// execute the full plan and match the uninterrupted result.
func TestResumeIgnoresForeignRecords(t *testing.T) {
	full, _ := runCampaignA(t, nil, nil)
	foreign := full.Records[0]
	foreign.Point.File = "not/in/plan.py"
	foreign.Point.Func = "Nope"
	res, executed := runCampaignA(t, nil, []analysis.Record{foreign})
	if res.Replayed != 0 {
		t.Fatalf("replayed %d foreign records", res.Replayed)
	}
	if executed != len(full.Records) {
		t.Fatalf("executed %d, want %d", executed, len(full.Records))
	}
	if !bytes.Equal(reportJSON(t, res), reportJSON(t, full)) {
		t.Fatal("report drifted under foreign resume records")
	}
}

// TestResumeRoundTripsThroughJSON replays records that went through a
// JSON encode/decode cycle (exactly what the result store hands back at
// recovery) and checks byte identity still holds.
func TestResumeRoundTripsThroughJSON(t *testing.T) {
	full, _ := runCampaignA(t, nil, nil)
	k := len(full.Records) - 2
	var resume []analysis.Record
	for _, rec := range full.Records[:k] {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		var back analysis.Record
		if err := json.Unmarshal(line, &back); err != nil {
			t.Fatal(err)
		}
		resume = append(resume, back)
	}
	res, executed := runCampaignA(t, nil, resume)
	if res.Replayed != k || executed != len(full.Records)-k {
		t.Fatalf("replayed=%d executed=%d, want %d/%d",
			res.Replayed, executed, k, len(full.Records)-k)
	}
	if !bytes.Equal(recordsJSON(t, res), recordsJSON(t, full)) {
		t.Fatal("round-tripped resume records drifted")
	}
}
