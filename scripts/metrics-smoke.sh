#!/usr/bin/env bash
# metrics-smoke boots profipyd, runs a demo campaign through the API,
# scrapes /metrics, and fails when an expected metric family is missing
# or the exposition output does not parse. It also checks the pprof
# debug listener answers. CI runs this as its observability gate.
set -euo pipefail

ADDR=127.0.0.1:18080
DEBUG_ADDR=127.0.0.1:16060
WORKDIR=$(mktemp -d)
BIN="$WORKDIR/profipyd"
SCRAPE="$WORKDIR/metrics.txt"

cleanup() {
  [[ -n "${PID:-}" ]] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build profipyd"
go build -o "$BIN" ./cmd/profipyd

echo "== boot profipyd on $ADDR (pprof on $DEBUG_ADDR)"
"$BIN" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" -data-dir "$WORKDIR/data" &
PID=$!

for _ in $(seq 1 100); do
  curl -fs "http://$ADDR/api/v1/projects" >/dev/null 2>&1 && break
  kill -0 "$PID" 2>/dev/null || { echo "profipyd exited during startup"; exit 1; }
  sleep 0.1
done
curl -fs "http://$ADDR/api/v1/projects" >/dev/null

echo "== run a demo campaign (sharded, synchronous)"
curl -fs -X POST "http://$ADDR/api/v1/campaigns?wait=true" \
  -H 'Content-Type: application/json' -d '{
    "project": "demo-python-etcd",
    "entry": "Workload",
    "env": "kvclient",
    "seed": 42,
    "sampleN": 5,
    "shards": 2,
    "specs": [{
      "name": "omit-write",
      "type": "MFC",
      "dsl": "change {\n\t$CALL{name=osio.WriteFile,osio.Remove}(...)\n} into {\n}"
    }]
  }' >/dev/null

echo "== scrape /metrics"
curl -fs "http://$ADDR/metrics" > "$SCRAPE"

echo "== check expected metric families"
missing=0
for fam in \
  profipy_http_requests_total \
  profipy_http_request_seconds \
  profipy_scheduler_queue_depth \
  profipy_scheduler_jobs_running \
  profipy_scheduler_jobs_finished_total \
  profipy_scheduler_job_duration_seconds \
  profipy_campaign_runs_total \
  profipy_campaign_experiments_total \
  profipy_campaign_phase_seconds \
  profipy_executor_records_total \
  profipy_executor_experiment_seconds \
  profipy_executor_shard_seconds \
  profipy_executor_workers_busy \
  profipy_resultstore_appends_total \
  profipy_resultstore_bytes_total \
  profipy_resultstore_fsyncs_total \
  profipy_resultstore_follow_subscribers
do
  if ! grep -q "^# TYPE $fam " "$SCRAPE"; then
    echo "MISSING family: $fam"
    missing=1
  fi
done
[[ $missing -eq 0 ]] || { echo "--- scrape ---"; cat "$SCRAPE"; exit 1; }

echo "== check exposition format parses"
# Every line is a comment or `name[{labels}] value`; values are Go
# floats or +Inf/-Inf/NaN.
bad=$(grep -vE '^#' "$SCRAPE" | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$' || true)
if [[ -n "$bad" ]]; then
  echo "unparseable exposition lines:"
  echo "$bad"
  exit 1
fi
# Histograms must carry the +Inf bucket.
for h in profipy_campaign_phase_seconds profipy_executor_shard_seconds; do
  grep -q "^${h}_bucket{.*le=\"+Inf\"}" "$SCRAPE" || { echo "missing +Inf bucket for $h"; exit 1; }
done
# Executor and campaign metrics must label the interpretation engine;
# the demo campaign runs on the default bytecode VM.
for m in profipy_executor_records_total profipy_campaign_experiments_total; do
  grep -q "^${m}{[^}]*engine=\"bytecode\"" "$SCRAPE" || { echo "missing engine=\"bytecode\" label on $m"; exit 1; }
done
# The incremental-recompile counter family must be exposed.
grep -q "^# TYPE profipy_campaign_compile_incremental_total " "$SCRAPE" || { echo "MISSING family: profipy_campaign_compile_incremental_total"; exit 1; }

echo "== check pprof debug listener"
curl -fs "http://$DEBUG_ADDR/debug/pprof/cmdline" >/dev/null

echo "metrics smoke OK ($(grep -c '^# TYPE' "$SCRAPE") families)"
