#!/usr/bin/env bash
# restart-chaos-smoke is the end-to-end gate on control-plane crash
# consistency: it runs a campaign to completion on one daemon (the
# golden run), then re-runs the identical campaign on a fresh data dir,
# SIGKILLs profipyd mid-campaign — no shutdown hooks, no journal
# flush — restarts it on the same data dir, and fails unless:
#
#   * the interrupted campaign resumes and finishes with a record set
#     and report byte-identical to the golden run (a re-executed index
#     would surface as a duplicate record line in the diff),
#   * a second job that was still queued at the moment of the kill is
#     re-admitted and completes after the restart,
#   * the profipy_recovery_* metric families report one resumed job,
#     one requeued job and a non-zero replayed-record count.
set -euo pipefail

ADDR=127.0.0.1:18092
WORKDIR=$(mktemp -d)
DAEMON="$WORKDIR/profipyd"

cleanup() {
  [[ -n "${PID:-}" ]] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build profipyd"
go build -o "$DAEMON" ./cmd/profipyd

# Single scheduler worker so the second job queues behind the first;
# -cores 2 plus rounds=400 stretches the campaign to several seconds so
# the SIGKILL reliably lands mid-flight.
boot() { # boot <data-dir>
  "$DAEMON" -addr "$ADDR" -cores 2 -workers 1 -data-dir "$1" &
  PID=$!
  for _ in $(seq 1 100); do
    curl -fs "http://$ADDR/api/v1/projects" >/dev/null 2>&1 && return 0
    kill -0 "$PID" 2>/dev/null || { echo "profipyd exited during startup"; exit 1; }
    sleep 0.1
  done
  echo "profipyd never became ready"; exit 1
}

# The §V-A style demo campaign, identical for the golden and chaos runs.
request() {
  cat <<'EOF'
{
  "project": "demo-python-etcd",
  "entry": "Workload",
  "env": "kvclient",
  "seed": 42,
  "rounds": 400,
  "scanFiles": ["etcdclient/client.go", "etcdclient/lock.go", "etcdclient/auth.go"],
  "specs": [{
    "name": "omit-write",
    "type": "MFC",
    "dsl": "change {\n\t$CALL{name=osio.WriteFile,osio.Remove}(...)\n} into {\n}"
  }]
}
EOF
}

records_of() { # records_of <campaign-id> -> sorted record lines
  curl -fs "http://$ADDR/api/v1/campaigns/$1/records?limit=10000" \
    | jq -cS '.records[]' | sort
}

report_of() { # report_of <campaign-id> -> key-sorted report JSON
  # The phase timeline is wall-clock and legitimately differs run to
  # run; everything else in the report must be deterministic.
  curl -fs "http://$ADDR/api/v1/campaigns/$1" | jq -S 'del(.phases)'
}

wait_job() { # wait_job <job-id>
  local state
  for _ in $(seq 1 600); do
    state=$(curl -fs "http://$ADDR/api/v1/jobs/$1" | jq -r .state)
    [[ "$state" == "done" ]] && return 0
    [[ "$state" == "failed" || "$state" == "canceled" ]] && {
      echo "job $1 ended $state:"; curl -fs "http://$ADDR/api/v1/jobs/$1"; exit 1; }
    sleep 0.2
  done
  echo "job $1 timed out"; exit 1
}

echo "== golden run: the campaign uninterrupted"
boot "$WORKDIR/golden"
GOLD_JOB=$(curl -fs -X POST "http://$ADDR/api/v1/campaigns" \
  -H 'Content-Type: application/json' -d "$(request)" | jq -r .job)
wait_job "$GOLD_JOB"
GOLD_CAMP="camp-${GOLD_JOB#job-}"
records_of "$GOLD_CAMP" > "$WORKDIR/golden-records.txt"
report_of "$GOLD_CAMP" > "$WORKDIR/golden-report.json"
GOLD_N=$(wc -l < "$WORKDIR/golden-records.txt")
[[ "$GOLD_N" -gt 1 ]] || { echo "golden run produced $GOLD_N records"; exit 1; }
echo "   golden campaign $GOLD_CAMP: $GOLD_N records"
kill "$PID" && wait "$PID" 2>/dev/null || true
PID=

echo "== chaos run: same campaign on a fresh data dir, plus a queued job"
boot "$WORKDIR/chaos"
JOB=$(curl -fs -X POST "http://$ADDR/api/v1/campaigns" \
  -H 'Content-Type: application/json' -d "$(request)" | jq -r .job)
CAMP="camp-${JOB#job-}"
QUEUED=$(curl -fs -X POST "http://$ADDR/api/v1/campaigns" \
  -H 'Content-Type: application/json' -d "$(request)" | jq -r .job)
QCAMP="camp-${QUEUED#job-}"
echo "   running $JOB ($CAMP), queued $QUEUED ($QCAMP)"

echo "== wait for the first records to hit the store, then SIGKILL profipyd"
for _ in $(seq 1 200); do
  N=$(curl -fs "http://$ADDR/api/v1/campaigns/$CAMP/records?limit=$GOLD_N" 2>/dev/null \
    | jq -r '.records | length' 2>/dev/null || echo 0)
  [[ "$N" -gt 0 ]] && break
  sleep 0.1
done
[[ "${N:-0}" -gt 0 ]] || { echo "campaign produced no records before the kill window"; exit 1; }
[[ "$N" -lt "$GOLD_N" ]] || { echo "campaign already finished ($N records); kill landed too late"; exit 1; }
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
echo "   killed profipyd with $N/$GOLD_N records stored"

echo "== restart profipyd on the same data dir"
boot "$WORKDIR/chaos"
wait_job "$JOB"
wait_job "$QUEUED"

echo "== compare the resumed campaign against the golden run"
records_of "$CAMP" > "$WORKDIR/chaos-records.txt"
if ! diff -q "$WORKDIR/golden-records.txt" "$WORKDIR/chaos-records.txt" >/dev/null; then
  echo "record sets differ (duplicates mean re-executed indices):"
  diff "$WORKDIR/golden-records.txt" "$WORKDIR/chaos-records.txt" | head -20
  exit 1
fi
report_of "$CAMP" > "$WORKDIR/chaos-report.json"
if ! diff -q "$WORKDIR/golden-report.json" "$WORKDIR/chaos-report.json" >/dev/null; then
  echo "reports differ:"
  diff "$WORKDIR/golden-report.json" "$WORKDIR/chaos-report.json" | head -20
  exit 1
fi
echo "   $(wc -l < "$WORKDIR/chaos-records.txt") records and report byte-identical to golden"

echo "== check the queued-at-crash job's campaign completed"
QN=$(records_of "$QCAMP" | wc -l)
[[ "$QN" -eq "$GOLD_N" ]] || { echo "requeued campaign has $QN records, want $GOLD_N"; exit 1; }

echo "== check the recovery metrics"
SCRAPE=$(curl -fs "http://$ADDR/metrics")
for fam in profipy_recovery_jobs_total profipy_recovery_replayed_records_total \
  profipy_resultstore_write_errors_total; do
  grep -q "^# TYPE $fam " <<<"$SCRAPE" || { echo "MISSING family: $fam"; exit 1; }
done
metric() { awk -v m="$1" '$1 == m { print $2 }' <<<"$SCRAPE"; }
RESUMED=$(metric 'profipy_recovery_jobs_total{outcome="resumed"}')
REQUEUED=$(metric 'profipy_recovery_jobs_total{outcome="requeued"}')
REPLAYED=$(metric 'profipy_recovery_replayed_records_total')
[[ "${RESUMED:-0}" == 1 ]] || { echo "resumed jobs = ${RESUMED:-0}, want 1"; exit 1; }
[[ "${REQUEUED:-0}" == 1 ]] || { echo "requeued jobs = ${REQUEUED:-0}, want 1"; exit 1; }
awk -v v="${REPLAYED:-0}" 'BEGIN { exit !(v+0 >= 1) }' \
  || { echo "replayed records = ${REPLAYED:-0}, want >= 1"; exit 1; }
echo "   resumed=$RESUMED requeued=$REQUEUED replayed=$REPLAYED"

echo "restart chaos smoke OK"
