#!/usr/bin/env bash
# worker-chaos-smoke boots profipyd plus two profipy-worker processes,
# runs the same campaign twice — once in-process as the baseline, once
# distributed across the workers with one of them SIGKILLed
# mid-campaign — and fails unless the distributed run completes and its
# record set is byte-identical to the baseline. This is the end-to-end
# gate on shard leases, heartbeat expiry, re-dispatch and idempotent
# record ingestion surviving a real process kill.
set -euo pipefail

ADDR=127.0.0.1:18091
WORKDIR=$(mktemp -d)
DAEMON="$WORKDIR/profipyd"
WORKER="$WORKDIR/profipy-worker"

cleanup() {
  for p in "${WPID1:-}" "${WPID2:-}" "${PID:-}"; do
    [[ -n "$p" ]] && kill "$p" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "== build profipyd and profipy-worker"
go build -o "$DAEMON" ./cmd/profipyd
go build -o "$WORKER" ./cmd/profipy-worker

echo "== boot profipyd on $ADDR (lease TTL 2s)"
"$DAEMON" -addr "$ADDR" -lease-ttl 2s -data-dir "$WORKDIR/data" &
PID=$!
for _ in $(seq 1 100); do
  curl -fs "http://$ADDR/api/v1/projects" >/dev/null 2>&1 && break
  kill -0 "$PID" 2>/dev/null || { echo "profipyd exited during startup"; exit 1; }
  sleep 0.1
done

# The §V-A style demo campaign: enough injection points that the
# distributed run spans several shard leases.
request() {
  cat <<EOF
{
  "project": "demo-python-etcd",
  "entry": "Workload",
  "env": "kvclient",
  "seed": 42,
  "scanFiles": ["etcdclient/client.go", "etcdclient/lock.go", "etcdclient/auth.go"],
  "specs": [{
    "name": "omit-write",
    "type": "MFC",
    "dsl": "change {\n\t\$CALL{name=osio.WriteFile,osio.Remove}(...)\n} into {\n}"
  }]$1
}
EOF
}

records_of() { # records_of <campaign-id> -> sorted record lines
  curl -fs "http://$ADDR/api/v1/campaigns/$1/records?limit=10000" \
    | jq -cS '.records[]' | sort
}

echo "== baseline: run the campaign in-process"
BASE_ID=$(curl -fs -X POST "http://$ADDR/api/v1/campaigns?wait=true" \
  -H 'Content-Type: application/json' -d "$(request '')" | jq -r .id)
records_of "$BASE_ID" > "$WORKDIR/baseline.txt"
BASE_N=$(wc -l < "$WORKDIR/baseline.txt")
[[ "$BASE_N" -gt 0 ]] || { echo "baseline produced no records"; exit 1; }
echo "   baseline campaign $BASE_ID: $BASE_N records"

echo "== start worker 1 (the victim; slow poll so the campaign outlives it)"
"$WORKER" -server "http://$ADDR" -name victim -parallel 2 -poll 500ms &
WPID1=$!

echo "== submit the distributed campaign"
JOB=$(curl -fs -X POST "http://$ADDR/api/v1/campaigns" \
  -H 'Content-Type: application/json' \
  -d "$(request ', "remote": true, "waitForWorkers": true')" | jq -r .job)
CAMP="camp-${JOB#job-}"
echo "   job $JOB, campaign $CAMP"

echo "== wait for the victim to ship some records, then SIGKILL it"
for _ in $(seq 1 100); do
  N=$(curl -fs "http://$ADDR/api/v1/campaigns/$CAMP/records?limit=1" 2>/dev/null \
    | jq -r '.records | length' 2>/dev/null || echo 0)
  [[ "$N" -gt 0 ]] && break
  sleep 0.1
done
kill -9 "$WPID1"
echo "   victim (pid $WPID1) killed"

echo "== start worker 2 (the survivor)"
"$WORKER" -server "http://$ADDR" -name survivor -parallel 2 -poll 100ms &
WPID2=$!

echo "== wait for the distributed campaign to finish"
for _ in $(seq 1 600); do
  STATE=$(curl -fs "http://$ADDR/api/v1/jobs/$JOB" | jq -r .state)
  [[ "$STATE" == "done" ]] && break
  [[ "$STATE" == "failed" || "$STATE" == "canceled" ]] && {
    echo "distributed campaign ended $STATE"; curl -fs "http://$ADDR/api/v1/jobs/$JOB"; exit 1; }
  sleep 0.2
done
[[ "${STATE:-}" == "done" ]] || { echo "distributed campaign timed out"; exit 1; }

echo "== compare distributed records against the baseline"
records_of "$CAMP" > "$WORKDIR/chaos.txt"
if ! diff -q "$WORKDIR/baseline.txt" "$WORKDIR/chaos.txt" >/dev/null; then
  echo "record sets differ:"
  diff "$WORKDIR/baseline.txt" "$WORKDIR/chaos.txt" | head -20
  exit 1
fi
echo "   $(wc -l < "$WORKDIR/chaos.txt") records, byte-identical to baseline"

echo "== check fleet surfaced both workers and the metric families"
WORKERS=$(curl -fs "http://$ADDR/api/v1/workers")
echo "$WORKERS" | jq -e 'length >= 2' >/dev/null \
  || { echo "worker listing incomplete: $WORKERS"; exit 1; }
SCRAPE=$(curl -fs "http://$ADDR/metrics")
for fam in profipy_fleet_workers profipy_fleet_lease_expiries_total \
  profipy_fleet_shard_redispatch_total profipy_fleet_records_ingested_total; do
  grep -q "^# TYPE $fam " <<<"$SCRAPE" || { echo "MISSING family: $fam"; exit 1; }
done

echo "worker chaos smoke OK"
